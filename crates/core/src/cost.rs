//! Extraction cost models (paper §5.1 and §6.1) — an **open** surface.
//!
//! The paper's headline `wardrobe@` row exists only because the cost
//! function was redesigned to reward loop structure; this module makes
//! that axis pluggable instead of a closed enum. The pieces:
//!
//! * [`CostModel`] — the object-safe trait every cost scheme implements:
//!   a per-node cost over [`CadLang`] (folded bottom-up through
//!   [`CostVec`]s) plus a stable [`CostModel::fingerprint`] string, so
//!   `SynthConfig`'s extraction-only fingerprint fields, snapshot-tier
//!   keys, and batch cache keys keep working for arbitrary user models.
//! * Built-ins: [`AstSizeCost`] (the paper's default), [`RewardLoopsCost`]
//!   (the `wardrobe@` scheme), [`WeightedCost`] (per-[`OpClass`] weight
//!   table), [`DepthCost`], and [`GeomCount`] (geometry-node count, for
//!   Pareto secondaries).
//! * Combinators: [`DepthPenalty`], [`Lexicographic`], [`WeightedSum`].
//! * [`parse_cost_spec`] — the `szb --cost` mini-spec grammar
//!   (`ast-size`, `reward-loops`, `weights(loop=1,geom=10)`,
//!   `pareto(size,depth)`, …).
//!
//! The legacy two-variant [`CostKind`] survives as a thin compatibility
//! layer: [`CostKind::model`] maps each variant onto the trait
//! implementation it is now defined by.

use std::fmt;
use std::sync::Arc;

use sz_egraph::CostFunction;

use crate::CadLang;

// ---------------------------------------------------------------------------
// Cost domain
// ---------------------------------------------------------------------------

/// A cost value: a short vector of `u64` components compared
/// **lexicographically**.
///
/// Scalar models ([`AstSizeCost`], [`WeightedCost`], …) use a single
/// component, stored **inline** (no heap allocation — the k-best
/// fixpoint evaluates and clones costs millions of times on the default
/// path, where the old plain-`usize` costs were `Copy`); combinators
/// carry the sub-model components they need to fold parents (e.g.
/// [`WeightedSum`] leads with the combined total so ordering is by
/// total, followed by each side's components so parents can recompute
/// them). Every model must produce a **fixed width** (see
/// [`CostModel::width`]) so comparisons never mix lengths.
#[derive(Debug, Clone)]
pub struct CostVec(CostRepr);

/// Inline scalar fast path vs heap-backed multi-component costs.
#[derive(Debug, Clone)]
enum CostRepr {
    Scalar(u64),
    Multi(Vec<u64>),
}

impl CostVec {
    /// A single-component cost (allocation-free).
    pub fn scalar(v: u64) -> Self {
        CostVec(CostRepr::Scalar(v))
    }

    /// A cost from explicit components (single-component vectors
    /// collapse to the inline representation).
    pub fn from_components(components: Vec<u64>) -> Self {
        match components.as_slice() {
            [v] => CostVec(CostRepr::Scalar(*v)),
            _ => CostVec(CostRepr::Multi(components)),
        }
    }

    /// The primary (ordering-dominant) component.
    ///
    /// # Panics
    ///
    /// Panics if the vector is empty (models never produce empty costs).
    pub fn primary(&self) -> u64 {
        self.components()[0]
    }

    /// All components.
    pub fn components(&self) -> &[u64] {
        match &self.0 {
            CostRepr::Scalar(v) => std::slice::from_ref(v),
            CostRepr::Multi(c) => c,
        }
    }
}

impl Default for CostVec {
    fn default() -> Self {
        CostVec::scalar(0)
    }
}

// Equality/ordering/hashing go through `components()` so the inline and
// heap representations of the same components can never disagree.
impl PartialEq for CostVec {
    fn eq(&self, other: &Self) -> bool {
        self.components() == other.components()
    }
}
impl Eq for CostVec {}
impl PartialOrd for CostVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CostVec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.components().cmp(other.components())
    }
}
impl std::hash::Hash for CostVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.components().hash(state);
    }
}

impl fmt::Display for CostVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.components() {
            [v] => write!(f, "{v}"),
            components => {
                write!(f, "(")?;
                for (i, c) in components.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// An extraction cost model over [`CadLang`] — the open replacement for
/// the old closed `CostKind` plumbing. Object-safe: the pipeline holds
/// models as `Arc<dyn CostModel>` inside `SynthConfig`.
///
/// # Contract
///
/// * `cost` must be **non-decreasing**: a node's primary component is at
///   least every child's. Models with [`CostModel::strictly_monotone`]
///   `true` additionally guarantee *strictly greater than* every child —
///   required for extraction to terminate on cyclic e-graphs, and
///   checked by [`parse_cost_spec`] for top-level specs.
/// * `fingerprint` must be a stable string that changes whenever the
///   model's behavior changes, built from a restricted charset (see
///   [`validate_fingerprint`]): no whitespace, no `;`, `+`, or `|`
///   (they delimit fingerprint fields), and any `,` or parentheses must
///   be balanced/nested (so `pareto(a,b)` compositions stay
///   unambiguous). It is embedded in `SynthConfig::fingerprint` (an
///   **extraction-only** field), so two models with equal fingerprints
///   may share batch cache entries and two configs differing only in
///   cost model still share e-graph snapshots. Violations are rejected
///   by `SynthConfig::with_cost_model` in debug builds.
/// * `width` must be constant for a given model and equal to the length
///   of every `CostVec` that `cost` returns.
///
/// # Optimality caveat (non-separable models)
///
/// The extractors are **bottom-up**: each e-class keeps its best
/// derivation(s) under the model's own cost order, and parents combine
/// children's kept entries. For purely additive models this yields the
/// global optimum. Models with `max`-combined components — depth in
/// [`DepthCost`], [`DepthPenalty`], or a depth side of
/// [`Lexicographic`]/[`WeightedSum`] — lack optimal substructure: a
/// derivation that is locally worse (bigger) but shallower can win
/// inside a deeper context, and the per-class table may have already
/// dropped it. Extraction under such models is therefore a
/// **deterministic greedy approximation** (the same caveat
/// `sz_egraph::AstDepth` has always carried); the carried component
/// vectors and k-best widening (`k*2` candidates per class in the
/// pipeline) reduce, but do not eliminate, the gap.
pub trait CostModel: Send + Sync + fmt::Debug {
    /// Computes the cost of `enode` from its children's already-computed
    /// costs (`child_costs[i]` corresponds to `enode.children()[i]`).
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec;

    /// A stable identifier for cache/snapshot keys (charset restricted —
    /// see the trait-level contract and [`validate_fingerprint`]).
    fn fingerprint(&self) -> String;

    /// Number of components in this model's [`CostVec`]s.
    fn width(&self) -> usize {
        1
    }

    /// Whether a node's primary component is *strictly* greater than
    /// each child's (true for every built-in except [`GeomCount`]).
    fn strictly_monotone(&self) -> bool {
        true
    }
}

/// Checks a [`CostModel::fingerprint`] against the charset contract:
/// non-empty, no whitespace, none of the field delimiters `;`/`+`/`|`,
/// balanced parentheses, and no `,` outside parentheses. Returns an
/// explanation when the fingerprint is invalid — such a fingerprint
/// could alias two different configs onto one batch cache key.
pub fn validate_fingerprint(fp: &str) -> Result<(), String> {
    if fp.is_empty() {
        return Err("fingerprint must not be empty".into());
    }
    let mut depth = 0usize;
    for c in fp.chars() {
        match c {
            c if c.is_whitespace() => {
                return Err(format!("`{fp}`: fingerprints must not contain whitespace"))
            }
            ';' | '+' | '|' => {
                return Err(format!(
                    "`{fp}`: `{c}` delimits fingerprint fields and may alias cache keys"
                ))
            }
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1).ok_or_else(|| {
                    format!("`{fp}`: unbalanced `)` makes compositions ambiguous")
                })?;
            }
            ',' if depth == 0 => {
                return Err(format!(
                    "`{fp}`: a top-level `,` makes pareto compositions ambiguous"
                ))
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(format!("`{fp}`: unbalanced `(`"));
    }
    Ok(())
}

/// Adapter running a [`CostModel`] as an [`sz_egraph::CostFunction`],
/// the form the extractors consume.
#[derive(Debug, Clone)]
pub struct ModelCost(pub Arc<dyn CostModel>);

impl CostFunction<CadLang> for ModelCost {
    type Cost = CostVec;
    fn cost(&mut self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        self.0.cost(enode, child_costs)
    }
}

// ---------------------------------------------------------------------------
// Op classes
// ---------------------------------------------------------------------------

/// Coarse operator classes of [`CadLang`], the rows of a
/// [`WeightedCost`] weight table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Loop/λ machinery: `Fold`, `Mapi`, `MapIdx*`, `Repeat`, `Fun`,
    /// `Param`.
    Loop,
    /// Geometry leaves: `Empty`, `Unit`, `Cylinder`, `Sphere`,
    /// `Hexagon`, `External`.
    Geom,
    /// Affine transforms: `Translate`, `Scale`, `Rotate`.
    Affine,
    /// Boolean operations and their fold-operator leaves.
    Bool,
    /// Index arithmetic: `Num`, `Idx`, `Add`, `Sub`, `Mul`, `Div`,
    /// `Sin`, `Cos`.
    Arith,
    /// List structure: `Nil`, `Cons`, `Concat`.
    List,
    /// Everything else (currently only `Vec3`).
    Other,
}

/// All classes, in fingerprint order.
pub const OP_CLASSES: [OpClass; 7] = [
    OpClass::Affine,
    OpClass::Arith,
    OpClass::Bool,
    OpClass::Geom,
    OpClass::List,
    OpClass::Loop,
    OpClass::Other,
];

impl OpClass {
    /// The class of an e-node.
    pub fn of(enode: &CadLang) -> OpClass {
        match enode {
            CadLang::Fold(_)
            | CadLang::Mapi(_)
            | CadLang::MapIdx1(_)
            | CadLang::MapIdx2(_)
            | CadLang::MapIdx3(_)
            | CadLang::Repeat(_)
            | CadLang::Fun(_)
            | CadLang::Param => OpClass::Loop,
            CadLang::Empty
            | CadLang::Unit
            | CadLang::Cylinder
            | CadLang::Sphere
            | CadLang::Hexagon
            | CadLang::External(_) => OpClass::Geom,
            CadLang::Translate(_) | CadLang::Scale(_) | CadLang::Rotate(_) => OpClass::Affine,
            CadLang::Union(_)
            | CadLang::Diff(_)
            | CadLang::Inter(_)
            | CadLang::UnionOp
            | CadLang::DiffOp
            | CadLang::InterOp => OpClass::Bool,
            CadLang::Num(_)
            | CadLang::Idx(_)
            | CadLang::Add(_)
            | CadLang::Sub(_)
            | CadLang::Mul(_)
            | CadLang::Div(_)
            | CadLang::Sin(_)
            | CadLang::Cos(_) => OpClass::Arith,
            CadLang::Nil | CadLang::Cons(_) | CadLang::Concat(_) => OpClass::List,
            CadLang::Vec3(_) => OpClass::Other,
        }
    }

    /// The spec-grammar name of this class (`loop`, `geom`, …).
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::Loop => "loop",
            OpClass::Geom => "geom",
            OpClass::Affine => "affine",
            OpClass::Bool => "bool",
            OpClass::Arith => "arith",
            OpClass::List => "list",
            OpClass::Other => "other",
        }
    }

    /// Parses a spec-grammar class name.
    pub fn parse(name: &str) -> Option<OpClass> {
        OP_CLASSES.iter().copied().find(|c| c.name() == name)
    }

    fn index(&self) -> usize {
        OP_CLASSES.iter().position(|c| c == self).expect("listed")
    }
}

/// Sums child primaries plus a node weight (the shape every scalar
/// additive model shares), saturating instead of overflowing.
fn additive(child_costs: &[CostVec], node_weight: u64) -> CostVec {
    let sum = child_costs
        .iter()
        .fold(node_weight, |acc, c| acc.saturating_add(c.primary()));
    CostVec::scalar(sum)
}

/// The `reward-loops` node weight table (paper §6.1): loop scaffolding,
/// lists, index arithmetic, and boolean-operator leaves are nearly free;
/// geometry-carrying nodes cost 10. This is what surfaces the loopy
/// wardrobe variant even though it has more AST nodes than the flat
/// input (Table 1's `@` row).
fn reward_loops_weight(enode: &CadLang) -> u64 {
    match OpClass::of(enode) {
        OpClass::Loop | OpClass::List | OpClass::Arith => 1,
        // The fold-operator *leaves* are scaffolding, the composite
        // boolean nodes carry geometry.
        OpClass::Bool => match enode {
            CadLang::UnionOp | CadLang::DiffOp | CadLang::InterOp => 1,
            _ => 10,
        },
        _ => 10,
    }
}

// ---------------------------------------------------------------------------
// Built-in models
// ---------------------------------------------------------------------------

/// Every node costs 1: minimize AST size (the paper's default).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSizeCost;

impl CostModel for AstSizeCost {
    fn cost(&self, _enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        additive(child_costs, 1)
    }
    fn fingerprint(&self) -> String {
        "ast-size".to_owned()
    }
}

/// Loop-forming nodes cost 1, geometry-carrying nodes 10, so programs
/// that route geometry through loops win even when nominally larger
/// (the `wardrobe@` scheme).
#[derive(Debug, Clone, Copy, Default)]
pub struct RewardLoopsCost;

impl CostModel for RewardLoopsCost {
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        additive(child_costs, reward_loops_weight(enode))
    }
    fn fingerprint(&self) -> String {
        "reward-loops".to_owned()
    }
}

/// Per-[`OpClass`] weight table: each node costs its class weight
/// (default 1), summed over the term. Weights are clamped to ≥ 1 so the
/// model stays strictly monotone (a zero weight would let extraction
/// loop on cyclic e-graphs).
#[derive(Debug, Clone)]
pub struct WeightedCost {
    weights: [u64; OP_CLASSES.len()],
}

impl Default for WeightedCost {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightedCost {
    /// All classes weighted 1 (equivalent to [`AstSizeCost`], but with
    /// its own fingerprint).
    pub fn new() -> Self {
        WeightedCost {
            weights: [1; OP_CLASSES.len()],
        }
    }

    /// Sets one class weight (clamped to ≥ 1).
    pub fn with_weight(mut self, class: OpClass, weight: u64) -> Self {
        self.weights[class.index()] = weight.max(1);
        self
    }

    /// The weight of `class`.
    pub fn weight(&self, class: OpClass) -> u64 {
        self.weights[class.index()]
    }
}

impl CostModel for WeightedCost {
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        additive(child_costs, self.weight(OpClass::of(enode)))
    }
    fn fingerprint(&self) -> String {
        let entries: Vec<String> = OP_CLASSES
            .iter()
            .filter(|c| self.weight(**c) != 1)
            .map(|c| format!("{}={}", c.name(), self.weight(*c)))
            .collect();
        format!("weights({})", entries.join(","))
    }
}

/// Cost = depth of the term (strictly monotone: `max(children) + 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct DepthCost;

impl CostModel for DepthCost {
    fn cost(&self, _enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        let max = child_costs.iter().map(CostVec::primary).max().unwrap_or(0);
        CostVec::scalar(max.saturating_add(1))
    }
    fn fingerprint(&self) -> String {
        "depth".to_owned()
    }
}

/// Cost = number of geometry-carrying nodes ([`OpClass::Geom`],
/// [`OpClass::Affine`], composite [`OpClass::Bool`]); loop scaffolding,
/// lists, and arithmetic are free.
///
/// **Not strictly monotone** (free nodes keep the cost flat), so it is
/// only safe as the *secondary* objective of a Pareto extraction — the
/// spec parser rejects it anywhere termination depends on it.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeomCount;

impl CostModel for GeomCount {
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        let weight = match OpClass::of(enode) {
            OpClass::Geom | OpClass::Affine => 1,
            OpClass::Bool => match enode {
                CadLang::UnionOp | CadLang::DiffOp | CadLang::InterOp => 0,
                _ => 1,
            },
            _ => 0,
        };
        additive(child_costs, weight)
    }
    fn fingerprint(&self) -> String {
        "geom".to_owned()
    }
    fn strictly_monotone(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// `inner + weight × depth`: penalizes deep terms on top of any base
/// model. Components: `[total, inner…, depth]`, so ordering is by the
/// combined total and parents can recompute both halves.
#[derive(Debug, Clone)]
pub struct DepthPenalty {
    inner: Arc<dyn CostModel>,
    weight: u64,
}

impl DepthPenalty {
    /// Wraps `inner`, adding `weight` (clamped to ≥ 1) per level of
    /// depth.
    pub fn new(inner: Arc<dyn CostModel>, weight: u64) -> Self {
        DepthPenalty {
            inner,
            weight: weight.max(1),
        }
    }
}

impl CostModel for DepthPenalty {
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        let w = self.inner.width();
        let inner_children: Vec<CostVec> = child_costs
            .iter()
            .map(|c| CostVec::from_components(c.components()[1..1 + w].to_vec()))
            .collect();
        let inner = self.inner.cost(enode, &inner_children);
        let depth = child_costs
            .iter()
            .map(|c| *c.components().last().expect("non-empty cost"))
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        let total = inner
            .primary()
            .saturating_add(self.weight.saturating_mul(depth));
        let mut components = Vec::with_capacity(self.width());
        components.push(total);
        components.extend_from_slice(inner.components());
        components.push(depth);
        CostVec::from_components(components)
    }
    fn fingerprint(&self) -> String {
        format!(
            "depth-penalty({},{})",
            self.inner.fingerprint(),
            self.weight
        )
    }
    fn width(&self) -> usize {
        self.inner.width() + 2
    }
    // Strict regardless of the inner model: depth alone strictly
    // increases and weight ≥ 1.
}

/// Orders by model `a`, breaking ties with model `b` (components are
/// `a`'s followed by `b`'s, compared lexicographically).
#[derive(Debug, Clone)]
pub struct Lexicographic {
    a: Arc<dyn CostModel>,
    b: Arc<dyn CostModel>,
}

impl Lexicographic {
    /// Primary objective `a`, tie-break `b`. At least one side must be
    /// strictly monotone for top-level extraction to terminate.
    pub fn new(a: Arc<dyn CostModel>, b: Arc<dyn CostModel>) -> Self {
        Lexicographic { a, b }
    }
}

impl CostModel for Lexicographic {
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        let wa = self.a.width();
        let a_children: Vec<CostVec> = child_costs
            .iter()
            .map(|c| CostVec::from_components(c.components()[..wa].to_vec()))
            .collect();
        let b_children: Vec<CostVec> = child_costs
            .iter()
            .map(|c| CostVec::from_components(c.components()[wa..].to_vec()))
            .collect();
        let mut components = self.a.cost(enode, &a_children).components().to_vec();
        components.extend_from_slice(self.b.cost(enode, &b_children).components());
        CostVec::from_components(components)
    }
    fn fingerprint(&self) -> String {
        format!("lex({},{})", self.a.fingerprint(), self.b.fingerprint())
    }
    fn width(&self) -> usize {
        self.a.width() + self.b.width()
    }
    fn strictly_monotone(&self) -> bool {
        // Non-decreasing components + one strict level make the
        // lexicographic key strictly grow.
        self.a.strictly_monotone() || self.b.strictly_monotone()
    }
}

/// `wa·a + wb·b`: a scalarized two-objective blend. Components:
/// `[total, a…, b…]` (ordering by total, sub-components carried for
/// parent folds).
#[derive(Debug, Clone)]
pub struct WeightedSum {
    a: Arc<dyn CostModel>,
    b: Arc<dyn CostModel>,
    wa: u64,
    wb: u64,
}

impl WeightedSum {
    /// Blends `wa·a + wb·b` (weights clamped to ≥ 1). At least one side
    /// must be strictly monotone.
    pub fn new(a: Arc<dyn CostModel>, wa: u64, b: Arc<dyn CostModel>, wb: u64) -> Self {
        WeightedSum {
            a,
            b,
            wa: wa.max(1),
            wb: wb.max(1),
        }
    }
}

impl CostModel for WeightedSum {
    fn cost(&self, enode: &CadLang, child_costs: &[CostVec]) -> CostVec {
        let wa = self.a.width();
        let a_children: Vec<CostVec> = child_costs
            .iter()
            .map(|c| CostVec::from_components(c.components()[1..1 + wa].to_vec()))
            .collect();
        let b_children: Vec<CostVec> = child_costs
            .iter()
            .map(|c| CostVec::from_components(c.components()[1 + wa..].to_vec()))
            .collect();
        let a = self.a.cost(enode, &a_children);
        let b = self.b.cost(enode, &b_children);
        let total = self
            .wa
            .saturating_mul(a.primary())
            .saturating_add(self.wb.saturating_mul(b.primary()));
        let mut components = Vec::with_capacity(self.width());
        components.push(total);
        components.extend_from_slice(a.components());
        components.extend_from_slice(b.components());
        CostVec::from_components(components)
    }
    fn fingerprint(&self) -> String {
        format!(
            "sum({},{},{},{})",
            self.a.fingerprint(),
            self.b.fingerprint(),
            self.wa,
            self.wb
        )
    }
    fn width(&self) -> usize {
        1 + self.a.width() + self.b.width()
    }
    fn strictly_monotone(&self) -> bool {
        self.a.strictly_monotone() || self.b.strictly_monotone()
    }
}

// ---------------------------------------------------------------------------
// Legacy CostKind compatibility
// ---------------------------------------------------------------------------

/// The original closed two-variant cost selector, kept as a thin
/// compatibility layer over the open [`CostModel`] trait (see
/// [`CostKind::model`]). New code should pass models to
/// `SynthConfig::with_cost_model` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostKind {
    /// Every node costs 1: minimize AST size (the paper's default).
    #[default]
    AstSize,
    /// Loop-forming nodes (`Fold`, `Mapi`, `MapIdx*`, `Repeat`, `Fun`)
    /// cost 1 while all other nodes cost 10, so programs that route
    /// geometry through loops win even when nominally larger.
    RewardLoops,
}

impl CostKind {
    /// The [`CostModel`] this variant is now defined by.
    pub fn model(&self) -> Arc<dyn CostModel> {
        match self {
            CostKind::AstSize => Arc::new(AstSizeCost),
            CostKind::RewardLoops => Arc::new(RewardLoopsCost),
        }
    }
}

/// The legacy [`CostKind`]-selected cost function over [`CadLang`],
/// running directly as an [`sz_egraph::CostFunction`] with scalar
/// `usize` costs. Kept for existing callers; the pipeline itself now
/// extracts through [`ModelCost`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CadCost {
    /// The selected scheme.
    pub kind: CostKind,
}

impl CadCost {
    /// Cost function with the given scheme.
    pub fn new(kind: CostKind) -> Self {
        CadCost { kind }
    }

    fn node_cost(&self, enode: &CadLang) -> usize {
        match self.kind {
            CostKind::AstSize => 1,
            CostKind::RewardLoops => reward_loops_weight(enode) as usize,
        }
    }
}

impl CostFunction<CadLang> for CadCost {
    type Cost = usize;
    fn cost(&mut self, enode: &CadLang, child_costs: &[usize]) -> usize {
        child_costs.iter().sum::<usize>() + self.node_cost(enode)
    }
}

// ---------------------------------------------------------------------------
// The `--cost` mini-spec grammar
// ---------------------------------------------------------------------------

/// A parsed `--cost` spec: either one model (ranked top-k extraction)
/// or a two-objective Pareto request.
#[derive(Debug, Clone)]
pub enum CostSpec {
    /// Rank by one model.
    Single(Arc<dyn CostModel>),
    /// Extract the Pareto front under two models (the first must be
    /// strictly monotone).
    Pareto(Arc<dyn CostModel>, Arc<dyn CostModel>),
}

/// A malformed `--cost` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostSpecError(String);

impl fmt::Display for CostSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad cost spec: {}", self.0)
    }
}

impl std::error::Error for CostSpecError {}

/// The grammar accepted by [`parse_cost_spec`], verbatim in
/// `szb --help`.
pub const COST_SPEC_GRAMMAR: &str = "\
SPEC := ast-size | size            every node costs 1 (the default)
      | reward-loops               loop nodes 1, geometry nodes 10 (wardrobe@)
      | depth                      term depth
      | weights(CLASS=W,...)       per-op-class weights (unlisted classes 1);
                                   CLASS := loop|geom|affine|bool|arith|list|other
      | depth-penalty(SPEC[,W])    SPEC + W x depth       (default W = 1)
      | lex(SPEC,SPEC)             order by the first, tie-break with the second
      | sum(SPEC,SPEC[,WA,WB])     WA x first + WB x second (default 1,1)
--cost also accepts, at the top level only:
        pareto(SPEC,SPEC)          deterministic Pareto front under two
                                   objectives; the second may be `geom`
                                   (geometry-node count)";

/// Splits `s` on top-level commas (commas inside nested parens stay).
fn split_args(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(s[start..].trim());
    parts
}

/// Splits `head(args)` into `(head, Some(args))`, or returns
/// `(s, None)` for a bare atom.
fn split_call(s: &str) -> Result<(&str, Option<&str>), CostSpecError> {
    match s.find('(') {
        None => Ok((s, None)),
        Some(open) => {
            let inner = s[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| CostSpecError(format!("`{s}`: missing closing `)`")))?;
            Ok((s[..open].trim(), Some(inner)))
        }
    }
}

fn err(msg: impl Into<String>) -> CostSpecError {
    CostSpecError(msg.into())
}

/// Parses a combinator weight: a positive integer. Zero is rejected
/// explicitly (instead of letting the constructors clamp it to 1) so
/// the spec grammar never silently changes requested semantics — the
/// same policy `weights(CLASS=0)` follows.
fn parse_weight(w: &str) -> Result<u64, CostSpecError> {
    let w = w.trim();
    let value: u64 = w
        .parse()
        .map_err(|_| err(format!("`{w}`: weight must be an integer")))?;
    if value == 0 {
        return Err(err(format!(
            "`{w}`: weight 0 would drop an objective (and can break \
             extraction termination); use a weight of at least 1"
        )));
    }
    Ok(value)
}

/// Parses one model spec (no `pareto(...)` at this level).
pub fn parse_cost_model(spec: &str) -> Result<Arc<dyn CostModel>, CostSpecError> {
    let spec = spec.trim();
    let (head, args) = split_call(spec)?;
    match (head, args) {
        ("ast-size" | "size", None) => Ok(Arc::new(AstSizeCost)),
        ("reward-loops", None) => Ok(Arc::new(RewardLoopsCost)),
        ("depth", None) => Ok(Arc::new(DepthCost)),
        ("geom", None) => Ok(Arc::new(GeomCount)),
        ("weights", Some(args)) => {
            let mut model = WeightedCost::new();
            if !args.trim().is_empty() {
                for part in split_args(args) {
                    let (class, weight) = part
                        .split_once('=')
                        .ok_or_else(|| err(format!("`{part}`: expected CLASS=WEIGHT")))?;
                    let class = OpClass::parse(class.trim()).ok_or_else(|| {
                        err(format!(
                            "`{}`: unknown op class (expected loop|geom|affine|bool|arith|list|other)",
                            class.trim()
                        ))
                    })?;
                    let weight: u64 = weight.trim().parse().map_err(|_| {
                        err(format!("`{}`: weight must be an integer", weight.trim()))
                    })?;
                    if weight == 0 {
                        return Err(err(format!(
                            "`{part}`: weight 0 breaks extraction termination (minimum 1)"
                        )));
                    }
                    model = model.with_weight(class, weight);
                }
            }
            Ok(Arc::new(model))
        }
        ("depth-penalty", Some(args)) => {
            let parts = split_args(args);
            match parts.as_slice() {
                [inner] => Ok(Arc::new(DepthPenalty::new(parse_cost_model(inner)?, 1))),
                [inner, w] => {
                    let w = parse_weight(w)?;
                    Ok(Arc::new(DepthPenalty::new(parse_cost_model(inner)?, w)))
                }
                _ => Err(err("depth-penalty takes (SPEC) or (SPEC,W)")),
            }
        }
        ("lex", Some(args)) => {
            let parts = split_args(args);
            let [a, b] = parts.as_slice() else {
                return Err(err("lex takes exactly (SPEC,SPEC)"));
            };
            Ok(Arc::new(Lexicographic::new(
                parse_cost_model(a)?,
                parse_cost_model(b)?,
            )))
        }
        ("sum", Some(args)) => {
            let parts = split_args(args);
            let (a, b, wa, wb) = match parts.as_slice() {
                [a, b] => (*a, *b, 1, 1),
                [a, b, wa, wb] => (*a, *b, parse_weight(wa)?, parse_weight(wb)?),
                _ => return Err(err("sum takes (SPEC,SPEC) or (SPEC,SPEC,WA,WB)")),
            };
            Ok(Arc::new(WeightedSum::new(
                parse_cost_model(a)?,
                wa,
                parse_cost_model(b)?,
                wb,
            )))
        }
        ("pareto", _) => Err(err(
            "pareto(...) is only allowed at the top level of --cost",
        )),
        _ => Err(err(format!(
            "`{spec}`: unknown cost spec (see the --cost grammar in --help)"
        ))),
    }
}

/// Parses a full `--cost` spec: a model, or a top-level
/// `pareto(SPEC,SPEC)`. Rejects specs whose termination guarantee is
/// broken (a non-strictly-monotone model anywhere ranking depends on
/// it, e.g. bare `geom`).
pub fn parse_cost_spec(spec: &str) -> Result<CostSpec, CostSpecError> {
    let spec = spec.trim();
    let (head, args) = split_call(spec)?;
    if head == "pareto" {
        let args = args.ok_or_else(|| err("pareto takes (SPEC,SPEC)"))?;
        let parts = split_args(args);
        let [a, b] = parts.as_slice() else {
            return Err(err("pareto takes exactly (SPEC,SPEC)"));
        };
        let a = parse_cost_model(a)?;
        let b = parse_cost_model(b)?;
        if !a.strictly_monotone() {
            return Err(err(format!(
                "`{}`: the first pareto objective must be strictly monotone \
                 (put `geom` second)",
                a.fingerprint()
            )));
        }
        return Ok(CostSpec::Pareto(a, b));
    }
    let model = parse_cost_model(spec)?;
    if !model.strictly_monotone() {
        return Err(err(format!(
            "`{}`: not strictly monotone — extraction could loop; use it as the \
             second objective of pareto(...) instead",
            model.fingerprint()
        )));
    }
    Ok(CostSpec::Single(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CadAnalysis;
    use sz_egraph::{EGraph, Extractor, KBestExtractor, Language, RecExpr};

    fn best(input_variants: &[&str], kind: CostKind) -> String {
        best_model(input_variants, kind.model())
    }

    fn best_model(input_variants: &[&str], model: Arc<dyn CostModel>) -> String {
        let mut eg: EGraph<CadLang, CadAnalysis> = EGraph::new(CadAnalysis);
        let ids: Vec<_> = input_variants
            .iter()
            .map(|s| eg.add_expr(&s.parse::<RecExpr<CadLang>>().unwrap()))
            .collect();
        for w in ids.windows(2) {
            eg.union(w[0], w[1]);
        }
        eg.rebuild();
        let ex = Extractor::new(&eg, ModelCost(model));
        let (_, e) = ex.find_best(ids[0]);
        crate::lang_to_cad(&e).unwrap().to_string()
    }

    fn cost_of(term: &str, model: &dyn CostModel) -> CostVec {
        let expr: RecExpr<CadLang> = term.parse().unwrap();
        let nodes = expr.as_slice();
        let mut costs: Vec<CostVec> = Vec::with_capacity(nodes.len());
        for node in nodes {
            let children: Vec<CostVec> = node
                .children()
                .iter()
                .map(|&c| costs[usize::from(c)].clone())
                .collect();
            costs.push(model.cost(node, &children));
        }
        costs.last().unwrap().clone()
    }

    const FLAT: &str = "(Union (Translate (Vec3 2 0 0) Unit) (Union (Translate (Vec3 4 0 0) Unit) (Translate (Vec3 6 0 0) Unit)))";
    const LOOPY: &str =
        "(Fold UnionOp Empty (Mapi (Fun (Translate (Vec3 (* 2 (+ i 1)) 0 0) c)) (Repeat Unit 3)))";

    #[test]
    fn ast_size_prefers_smaller() {
        // The loop program is smaller here, so both schemes pick it.
        assert!(best(&[FLAT, LOOPY], CostKind::AstSize).contains("Mapi"));
    }

    #[test]
    fn reward_loops_prefers_loops_even_when_bigger() {
        // Two elements only: the flat form (13 nodes) is smaller than the
        // loop form (15 nodes), so AstSize keeps it flat…
        let flat2 = "(Union (Translate (Vec3 2 0 0) Unit) (Translate (Vec3 4 0 0) Unit))";
        let loopy2 = "(Fold UnionOp Empty (Mapi (Fun (Translate (Vec3 (* 2 (+ i 1)) 0 0) c)) (Repeat Unit 2)))";
        assert!(!best(&[flat2, loopy2], CostKind::AstSize).contains("Mapi"));
        // …while reward-loops switches to the loop form (the wardrobe@
        // behaviour of Table 1).
        assert!(best(&[flat2, loopy2], CostKind::RewardLoops).contains("Mapi"));
    }

    #[test]
    fn weighted_cost_reproduces_reward_loops_choice() {
        // A weight table that punishes geometry/affine/bool nodes makes
        // the same call reward-loops does on the two-element row.
        let flat2 = "(Union (Translate (Vec3 2 0 0) Unit) (Translate (Vec3 4 0 0) Unit))";
        let loopy2 = "(Fold UnionOp Empty (Mapi (Fun (Translate (Vec3 (* 2 (+ i 1)) 0 0) c)) (Repeat Unit 2)))";
        let weighted: Arc<dyn CostModel> = Arc::new(
            WeightedCost::new()
                .with_weight(OpClass::Geom, 10)
                .with_weight(OpClass::Affine, 10)
                .with_weight(OpClass::Other, 10),
        );
        assert!(best_model(&[flat2, loopy2], weighted).contains("Mapi"));
        // All-ones weights agree with plain AST size.
        let ones: Arc<dyn CostModel> = Arc::new(WeightedCost::new());
        assert!(!best_model(&[flat2, loopy2], ones).contains("Mapi"));
    }

    #[test]
    fn model_costs_match_legacy_cadcost() {
        // The reimplemented models must agree with the legacy CadCost
        // numbers node-for-node (the byte-identical default guarantee).
        for term in [FLAT, LOOPY] {
            for kind in [CostKind::AstSize, CostKind::RewardLoops] {
                let expr: RecExpr<CadLang> = term.parse().unwrap();
                let mut legacy = CadCost::new(kind);
                let mut legacy_costs: Vec<usize> = Vec::new();
                for node in expr.as_slice() {
                    let children: Vec<usize> = node
                        .children()
                        .iter()
                        .map(|&c| legacy_costs[usize::from(c)])
                        .collect();
                    legacy_costs.push(legacy.cost(node, &children));
                }
                let model = kind.model();
                assert_eq!(
                    cost_of(term, model.as_ref()).primary(),
                    *legacy_costs.last().unwrap() as u64,
                    "{kind:?} over {term}"
                );
            }
        }
    }

    #[test]
    fn depth_and_penalty_combinators() {
        let depth = cost_of(FLAT, &DepthCost);
        assert_eq!(depth.primary(), 5); // Union→Union→Translate→Vec3→leaf
        let penalty = DepthPenalty::new(Arc::new(AstSizeCost), 2);
        let c = cost_of(FLAT, &penalty);
        // total = size + 2·depth; size of FLAT is 20 nodes.
        assert_eq!(cost_of(FLAT, &AstSizeCost).primary(), 20);
        assert_eq!(c.primary(), 20 + 2 * 5);
        assert_eq!(c.components().len(), penalty.width());
        assert_eq!(*c.components().last().unwrap(), 5);
    }

    #[test]
    fn lexicographic_orders_by_first_then_second() {
        let lex = Lexicographic::new(Arc::new(DepthCost), Arc::new(AstSizeCost));
        let c = cost_of(FLAT, &lex);
        assert_eq!(c.components(), &[5, 20]);
        assert_eq!(lex.width(), 2);
        assert!(lex.strictly_monotone());
    }

    #[test]
    fn weighted_sum_blends_objectives() {
        let sum = WeightedSum::new(Arc::new(AstSizeCost), 1, Arc::new(DepthCost), 10);
        let c = cost_of(FLAT, &sum);
        assert_eq!(c.components(), &[20 + 10 * 5, 20, 5]);
        assert!(sum.strictly_monotone());
    }

    #[test]
    fn geom_count_counts_geometry_only() {
        // FLAT: 3 Unit + 3 Translate + 2 Union = 8; Vec3/Num are free.
        assert_eq!(cost_of(FLAT, &GeomCount).primary(), 8);
        // LOOPY routes one Unit through one Translate under a Fold
        // seeded with Empty: the loop scaffolding itself is free.
        assert_eq!(cost_of(LOOPY, &GeomCount).primary(), 3);
        assert!(!GeomCount.strictly_monotone());
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let models: Vec<Arc<dyn CostModel>> = vec![
            Arc::new(AstSizeCost),
            Arc::new(RewardLoopsCost),
            Arc::new(DepthCost),
            Arc::new(GeomCount),
            Arc::new(WeightedCost::new()),
            Arc::new(WeightedCost::new().with_weight(OpClass::Geom, 10)),
            Arc::new(DepthPenalty::new(Arc::new(AstSizeCost), 2)),
            Arc::new(Lexicographic::new(
                Arc::new(AstSizeCost),
                Arc::new(DepthCost),
            )),
            Arc::new(WeightedSum::new(
                Arc::new(AstSizeCost),
                1,
                Arc::new(DepthCost),
                10,
            )),
        ];
        let fps: Vec<String> = models.iter().map(|m| m.fingerprint()).collect();
        for (i, a) in fps.iter().enumerate() {
            assert!(!a.contains(char::is_whitespace), "{a}");
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
        assert_eq!(fps[0], "ast-size");
        assert_eq!(fps[5], "weights(geom=10)");
        assert_eq!(fps[6], "depth-penalty(ast-size,2)");
    }

    #[test]
    fn spec_parser_roundtrips_the_grammar() {
        for (spec, fp) in [
            ("ast-size", "ast-size"),
            ("size", "ast-size"),
            ("reward-loops", "reward-loops"),
            ("depth", "depth"),
            ("weights(loop=1,geom=10)", "weights(geom=10)"),
            ("weights()", "weights()"),
            ("depth-penalty(ast-size,3)", "depth-penalty(ast-size,3)"),
            ("depth-penalty(size)", "depth-penalty(ast-size,1)"),
            ("lex(size,depth)", "lex(ast-size,depth)"),
            ("sum(size,depth,1,10)", "sum(ast-size,depth,1,10)"),
            ("sum(size,depth)", "sum(ast-size,depth,1,1)"),
            ("lex(weights(geom=5),depth)", "lex(weights(geom=5),depth)"),
        ] {
            match parse_cost_spec(spec) {
                Ok(CostSpec::Single(m)) => assert_eq!(m.fingerprint(), fp, "{spec}"),
                other => panic!("{spec}: {other:?}"),
            }
        }
        match parse_cost_spec("pareto(size,depth)") {
            Ok(CostSpec::Pareto(a, b)) => {
                assert_eq!(a.fingerprint(), "ast-size");
                assert_eq!(b.fingerprint(), "depth");
            }
            other => panic!("{other:?}"),
        }
        match parse_cost_spec("pareto(size, geom)") {
            Ok(CostSpec::Pareto(_, b)) => assert_eq!(b.fingerprint(), "geom"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spec_parser_rejects_bad_specs() {
        for bad in [
            "unknown",
            "weights(geom)",
            "weights(geometry=2)",
            "weights(geom=0)",
            "weights(geom=x)",
            "lex(size)",
            "sum(size)",
            "pareto(size)",
            "pareto(geom,size)", // non-monotone first objective
            "geom",              // non-monotone ranking model
            "lex(geom,geom)",
            "depth-penalty(size", // missing paren
            "pareto(pareto(size,depth),depth)",
            // Zero combinator weights are rejected (not silently
            // clamped): honoring them would drop an objective and can
            // break termination.
            "sum(size,geom,0,5)",
            "sum(size,depth,1,0)",
            "depth-penalty(size,0)",
        ] {
            assert!(parse_cost_spec(bad).is_err(), "{bad} should be rejected");
        }
        let err = parse_cost_spec("geom").unwrap_err();
        assert!(err.to_string().contains("pareto"), "{err}");
        let err = parse_cost_spec("sum(size,geom,0,5)").unwrap_err();
        assert!(err.to_string().contains("weight 0"), "{err}");
    }

    #[test]
    fn fingerprint_charset_is_validated() {
        for fp in [
            "ast-size",
            "weights(geom=10,loop=2)",
            "depth-penalty(ast-size,2)",
            "sum(ast-size,depth,1,10)",
        ] {
            assert!(validate_fingerprint(fp).is_ok(), "{fp}");
        }
        for bad in [
            "",
            "has space",
            "a;k=2",     // field delimiter: could alias cache keys
            "m+pareto(", // composition delimiter + unbalanced paren
            "a|b",
            "a,b", // top-level comma: ambiguous inside pareto(...)
            "f(a))",
        ] {
            assert!(validate_fingerprint(bad).is_err(), "{bad:?}");
        }
        // Every built-in fingerprint obeys the contract.
        for model in [
            CostKind::AstSize.model(),
            CostKind::RewardLoops.model(),
            Arc::new(WeightedCost::new().with_weight(OpClass::Geom, 10)) as Arc<dyn CostModel>,
            Arc::new(DepthPenalty::new(Arc::new(AstSizeCost), 2)),
            Arc::new(Lexicographic::new(
                Arc::new(DepthCost),
                Arc::new(AstSizeCost),
            )),
            Arc::new(WeightedSum::new(
                Arc::new(AstSizeCost),
                1,
                Arc::new(DepthCost),
                5,
            )),
            Arc::new(GeomCount),
        ] {
            assert!(validate_fingerprint(&model.fingerprint()).is_ok());
        }
    }

    #[test]
    fn kbest_under_models_is_sorted() {
        let mut eg: EGraph<CadLang, CadAnalysis> = EGraph::new(CadAnalysis);
        let a = eg.add_expr(&FLAT.parse::<RecExpr<CadLang>>().unwrap());
        let b = eg.add_expr(&LOOPY.parse::<RecExpr<CadLang>>().unwrap());
        eg.union(a, b);
        eg.rebuild();
        for model in [
            CostKind::AstSize.model(),
            CostKind::RewardLoops.model(),
            Arc::new(DepthPenalty::new(Arc::new(AstSizeCost), 1)) as Arc<dyn CostModel>,
        ] {
            let kb = KBestExtractor::new(&eg, ModelCost(model), 4);
            let results = kb.find_best_k(a);
            assert!(!results.is_empty());
            for w in results.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }
}
