//! The session-based synthesis API: a [`Synthesizer`] is built once from
//! a [`SynthConfig`], compiles and caches the rewrite rule set, and then
//! serves any number of runs through one entry point —
//! [`Synthesizer::run`] — which automatically dispatches between:
//!
//! * a **cold** run (no usable snapshot): the full pipeline, saturation
//!   through extraction;
//! * an **extraction-only resume** (snapshot with a matching
//!   [`SynthConfig::saturation_fingerprint`]): the final e-graph is
//!   restored and only extraction re-runs — zero saturation iterations;
//! * a **partial-saturation resume** (snapshot whose fingerprint matches
//!   *modulo lower fuel limits*, see
//!   [`SynthSnapshot::supports_partial_resume`]): the saturation-phase
//!   runner state is restored via [`Runner::resume_from`] and saturation
//!   *continues* where the producing run stopped, then the inference
//!   passes and extraction re-run — strictly fewer iterations than a
//!   cold run at the higher fuel, byte-identical output.
//!
//! Runs are bounded and observable: [`RunOptions`] carries per-run
//! [`RunLimits`] (iteration/node overrides and a wall-clock deadline), a
//! cooperative [`CancelToken`], and a [`ProgressObserver`] iteration
//! hook. Deadlines and cancellation stop saturation **at iteration
//! boundaries** with [`StopReason::Cancelled`]; the partial result is
//! still extracted, so a cancelled run returns a well-formed
//! [`Synthesis`] rather than an error (serving callers can always
//! respond with *something*).
//!
//! The compiled rule sets are cached process-wide: every session with
//! the same `structural_rules` flag shares one `Arc` of compiled
//! rewrites, so building a `Synthesizer` per job (as `sz-batch` does) is
//! cheap and pattern compilation happens once per process — measured by
//! `sz_egraph::compile_count()` in the `ematch` bench.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sz_cad::Cad;
use sz_egraph::{
    CancelToken, ProgressObserver, RuleStat, Runner, Scheduler, Snapshot, SnapshotError, StopReason,
};
use sz_lint::Report;
use sz_trace::Telemetry;

use crate::analysis::{CadAnalysis, CadGraph};
use crate::cost::CostModel;
use crate::funcinfer::{infer_functions_with, PassControl};
use crate::lang::cad_to_lang;
use crate::listmanip::list_manipulation;
use crate::loopinfer::infer_loops_with;
use crate::pipeline::{
    extract_pareto, extract_top_k, SatPhase, SynthConfig, SynthError, SynthSnapshot, Synthesis,
};
use crate::rules::{all_rules, rules as base_rules, CadRewrite};

/// How a [`Synthesizer::run`] actually executed (recorded in
/// [`Synthesis::mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Full pipeline from scratch (no snapshot, or an incompatible one).
    #[default]
    Cold,
    /// The final e-graph was restored from a snapshot and only
    /// extraction ran (zero saturation iterations).
    ResumedExtraction,
    /// Saturation *continued* from a lower-fuel snapshot's
    /// saturation-phase state, then inference and extraction re-ran.
    ResumedSaturation,
}

impl RunMode {
    /// True for either resume flavor.
    pub fn is_resumed(&self) -> bool {
        !matches!(self, RunMode::Cold)
    }
}

/// Per-run resource bounds layered over the session's [`SynthConfig`].
///
/// `iter_limit` / `node_limit` override the config's saturation fuel for
/// this run only (they participate in snapshot-compatibility decisions
/// exactly like config fields). `deadline` is a wall-clock bound on the
/// whole run: when it passes, saturation stops at the next iteration
/// boundary with [`StopReason::Cancelled`] and the partial result is
/// extracted — unlike the config's `time_limit`, which is saturation-only
/// fuel and reports [`StopReason::TimeLimit`].
#[derive(Debug, Clone, Default)]
pub struct RunLimits {
    iter_limit: Option<usize>,
    node_limit: Option<usize>,
    deadline: Option<Duration>,
}

impl RunLimits {
    /// No overrides: the session config's limits apply.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the saturation iteration limit for this run.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = Some(limit);
        self
    }

    /// Overrides the saturation e-node limit for this run.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets a wall-clock deadline for the whole run, measured from the
    /// moment [`Synthesizer::run`] is called.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }
}

/// Options for one [`Synthesizer::run`]: an optional snapshot to resume
/// from, per-run [`RunLimits`], a [`CancelToken`], a
/// [`ProgressObserver`], and whether to capture a [`SynthSnapshot`] of
/// the result (returned in [`Synthesis::snapshot`]).
#[derive(Clone, Default)]
pub struct RunOptions {
    snapshot: Option<SynthSnapshot>,
    limits: RunLimits,
    cancel: Option<CancelToken>,
    progress: Option<Arc<dyn ProgressObserver>>,
    capture: bool,
    pareto: Option<[Arc<dyn CostModel>; 2]>,
    telemetry: Telemetry,
}

impl RunOptions {
    /// Default options: cold run, session limits, no cancellation, no
    /// progress hook, no snapshot capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a snapshot to resume from. The run dispatches
    /// automatically: exact saturation-fingerprint match → extraction-only
    /// resume; match modulo lower fuel limits → partial-saturation
    /// resume; otherwise the snapshot is ignored and the run is cold
    /// (check [`Synthesis::mode`] to see which happened).
    pub fn with_snapshot(mut self, snapshot: SynthSnapshot) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// Sets per-run limits (see [`RunLimits`]). A deadline already set
    /// via [`RunOptions::with_deadline`] is preserved unless `limits`
    /// carries its own — so `with_deadline(...).with_limits(...)` and
    /// the reverse order both keep the deadline.
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        let deadline = limits.deadline.or(self.limits.deadline);
        self.limits = limits;
        self.limits.deadline = deadline;
        self
    }

    /// Shorthand for a wall-clock deadline on this run (see
    /// [`RunLimits::with_deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token, polled at saturation
    /// iteration boundaries.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a progress observer notified after every saturation
    /// iteration.
    pub fn with_progress(mut self, observer: Arc<dyn ProgressObserver>) -> Self {
        self.progress = Some(observer);
        self
    }

    /// Whether to capture a [`SynthSnapshot`] of this run (final e-graph
    /// plus, for single-round configs, the saturation-phase state that
    /// enables partial resume). Cancelled runs never capture: their
    /// graphs are wall-clock-truncated, not the deterministic product of
    /// the config, and must not poison snapshot caches.
    pub fn capture_snapshot(mut self, capture: bool) -> Self {
        self.capture = capture;
        self
    }

    /// Requests Pareto-front extraction under two cost models for this
    /// run only, overriding [`SynthConfig::with_pareto`]. The front is
    /// returned in [`Synthesis::pareto`]; the first model must be
    /// strictly monotone (see [`CostModel`]).
    ///
    /// # Panics
    ///
    /// Debug builds panic when the first model is not strictly monotone
    /// (mirroring [`SynthConfig::with_pareto`] and the CLI's
    /// `parse_cost_spec` rejection).
    pub fn with_pareto(mut self, a: Arc<dyn CostModel>, b: Arc<dyn CostModel>) -> Self {
        debug_assert!(
            a.strictly_monotone(),
            "the first pareto objective must be strictly monotone \
             (put plateauing measures like GeomCount second)"
        );
        self.pareto = Some([a, b]);
        self
    }

    /// Attaches a [`Telemetry`] bundle (spans + metrics) to this run.
    ///
    /// The pipeline records phase spans (`pipeline/saturation`,
    /// `pipeline/inference`, `pipeline/extraction`,
    /// `pipeline/snapshot.restore`, `pipeline/snapshot.capture`), the
    /// saturation runner records per-iteration and per-rule spans (see
    /// [`sz_egraph::Runner::with_telemetry`]), and run-mode counters
    /// (`run.mode.cold` / `run.mode.resumed_extraction` /
    /// `run.mode.resumed_saturation`) land in the metrics registry. The
    /// same bundle is handed back in [`Synthesis::telemetry`]. A
    /// disabled bundle (the default) records nothing and costs nothing.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("snapshot", &self.snapshot.as_ref().map(|_| "..."))
            .field("limits", &self.limits)
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "..."))
            .field("capture", &self.capture)
            .field("pareto", &self.pareto)
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

/// Process-wide cache of compiled rule sets, keyed by the
/// `structural_rules` flag: every [`Synthesizer`] shares these, so
/// pattern compilation happens once per process regardless of how many
/// sessions (or batch jobs) are created.
///
/// The static lint analysis ([`sz_lint::lint_ruleset`]) runs once per
/// cached set, at the same time the patterns compile, and its [`Report`]
/// is cached alongside — so per-session construction pays neither
/// compilation nor analysis.
fn compiled_ruleset(structural: bool) -> (Arc<[CadRewrite]>, Arc<Report>) {
    type CachedRuleset = (Arc<[CadRewrite]>, Arc<Report>);
    static BASE: OnceLock<CachedRuleset> = OnceLock::new();
    static STRUCTURAL: OnceLock<CachedRuleset> = OnceLock::new();
    let cell = if structural { &STRUCTURAL } else { &BASE };
    cell.get_or_init(|| {
        let rules: Arc<[CadRewrite]> = if structural {
            all_rules().into()
        } else {
            base_rules().into()
        };
        let report = Arc::new(sz_lint::lint_ruleset(&rules));
        (rules, report)
    })
    .clone()
}

/// A reusable synthesis session: the paper's pipeline behind one
/// entry point ([`Synthesizer::run`]) that covers cold runs, both resume
/// flavors, deadlines, cancellation, and progress observation.
///
/// Construction compiles (or fetches from the process-wide cache) the
/// rewrite rule set for the config's `structural_rules` flag; `run`
/// borrows `&self`, and the type is `Send + Sync`, so one session can
/// serve concurrent runs from many worker threads.
///
/// # Examples
///
/// ```
/// use szalinski::{RunOptions, SynthConfig, Synthesizer};
/// use sz_cad::Cad;
///
/// let flat = Cad::union_chain(
///     (1..=5).map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit)).collect(),
/// );
/// let session = Synthesizer::new(SynthConfig::new());
/// let result = session.run(&flat, RunOptions::new()).unwrap();
/// let (rank, prog) = result.structured().expect("finds the loop");
/// assert_eq!(rank, 1);
/// assert!(prog.cad.to_string().contains("(Repeat Unit 5)"));
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    config: SynthConfig,
    ruleset: Arc<[CadRewrite]>,
    lint: Arc<Report>,
}

impl Synthesizer {
    /// Builds a session for `config`, compiling/reusing its rule set.
    ///
    /// The rule set is statically analyzed once per process (see
    /// [`Synthesizer::try_new`]); the built-in sets are lint-clean, so
    /// this cannot fail.
    pub fn new(config: SynthConfig) -> Self {
        Self::try_new(config).expect("built-in rule sets are lint-clean")
    }

    /// Builds a session for `config`, compiling/reusing its rule set and
    /// running the static rule analyzer ([`sz_lint::lint_ruleset`]) over
    /// it — once per process, cached alongside the compiled patterns.
    ///
    /// # Errors
    ///
    /// [`SynthError::RuleLint`] when the analysis carries any deny-level
    /// finding (e.g. `SZL001`, an RHS variable the LHS never binds):
    /// such a rule set would panic mid-saturation, so construction
    /// refuses it up front with the full report attached. Warn/info
    /// findings never fail construction; inspect them via
    /// [`Synthesizer::lint_report`].
    pub fn try_new(config: SynthConfig) -> Result<Self, SynthError> {
        let (ruleset, lint) = compiled_ruleset(config.structural_rules);
        if !lint.is_clean() {
            return Err(SynthError::RuleLint(lint));
        }
        Ok(Synthesizer {
            config,
            ruleset,
            lint,
        })
    }

    /// The session's base configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Number of rewrite rules in the compiled rule set.
    pub fn rule_count(&self) -> usize {
        self.ruleset.len()
    }

    /// The static-analysis report for this session's rule set (shared,
    /// process-wide, computed once at rule-compile time). Guaranteed free
    /// of deny-level findings — construction fails otherwise — but the
    /// warn/info findings (duplicate rules, inverse pairs, expansive
    /// rules) are kept for audit; `szb lint --rules` prints them.
    pub fn lint_report(&self) -> &Arc<Report> {
        &self.lint
    }

    /// The session config with this run's [`RunLimits`] and pareto
    /// overrides folded in — the config whose fingerprints govern
    /// snapshot compatibility and capture for the run.
    fn effective_config(&self, opts: &RunOptions) -> SynthConfig {
        let mut config = self.config.clone();
        if let Some(iter) = opts.limits.iter_limit {
            config.iter_limit = iter;
        }
        if let Some(nodes) = opts.limits.node_limit {
            config.node_limit = nodes;
        }
        if let Some(pareto) = &opts.pareto {
            config.pareto = Some(pareto.clone());
        }
        config
    }

    /// Runs the pipeline on a flat CSG. One entry point for every mode;
    /// see the [module docs](self) for the dispatch rules and
    /// cancellation semantics.
    ///
    /// Determinism caveat (shared by every resume guarantee in this
    /// workspace): byte-identity between a resumed and a cold run holds
    /// when the config's saturation `time_limit` never binds — a
    /// time-limited stop is wall-clock-dependent, so even two cold runs
    /// at the same config can differ. A resumed run additionally gets a
    /// fresh `time_limit` budget for its own leg.
    ///
    /// # Errors
    ///
    /// [`SynthError::NotFlat`] if the input violates the paper's flat-CSG
    /// contract; [`SynthError::NoPrograms`] if extraction found nothing
    /// (cannot happen for well-formed inputs). Cancellation is **not** an
    /// error: the result carries [`StopReason::Cancelled`] and whatever
    /// programs the partial graph yields.
    pub fn run(&self, input: &Cad, opts: RunOptions) -> Result<Synthesis, SynthError> {
        if !input.is_flat_csg() {
            return Err(SynthError::NotFlat);
        }
        let result = self.run_unchecked(input, opts);
        if result.top_k.is_empty() {
            return Err(SynthError::NoPrograms);
        }
        Ok(result)
    }

    /// [`Synthesizer::run`] without the flat-CSG and empty-extraction
    /// checks — the permissive behavior the deprecated `synthesize`
    /// free function always had (it ran the pipeline over any `Cad` and
    /// could return an empty top-k). Crate-internal: new code should go
    /// through [`Synthesizer::run`].
    pub(crate) fn run_unchecked(&self, input: &Cad, mut opts: RunOptions) -> Synthesis {
        let start = Instant::now();
        let config = self.effective_config(&opts);
        let deadline = opts.limits.deadline.map(|d| start + d);

        // A cancel/deadline that is *already* triggered stops the run
        // before any restore or extraction work — crucial for batch
        // shutdown over warm snapshot tiers, where every queued job
        // would otherwise pay a full restore + extraction with nobody
        // waiting for the answer. The cold path cancels at iteration 0,
        // leaving just the input to extract.
        let already_stopped = opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || deadline.is_some_and(|d| Instant::now() >= d);

        // Dispatch: exact fingerprint match → extraction-only resume;
        // match modulo lower fuel → continue saturating; otherwise cold.
        enum Plan {
            Extraction,
            Partial,
            Cold,
        }
        let plan = match &opts.snapshot {
            _ if already_stopped => Plan::Cold,
            Some(snapshot) if snapshot.input_sexp() == input.to_string() => {
                if snapshot.saturation_fingerprint() == config.saturation_fingerprint()
                    && snapshot.egraph_snapshot().roots().len() == 1
                {
                    Plan::Extraction
                } else if snapshot.supports_partial_resume(&config)
                    && snapshot
                        .sat_phase()
                        .is_some_and(|p| p.snapshot().roots().len() == 1)
                {
                    Plan::Partial
                } else {
                    Plan::Cold
                }
            }
            _ => Plan::Cold,
        };
        // An offered snapshot must never make a run worse than cold: a
        // bit-rotted snapshot can parse, match the fingerprints, and
        // still restore a graph that extracts nothing — degrade to a
        // cold run instead of returning an empty result.
        let result = match plan {
            Plan::Extraction => {
                let snapshot = opts.snapshot.take().expect("dispatch saw a snapshot");
                let result = self.run_extraction_resume(input, &config, &opts, snapshot, start);
                if result.top_k.is_empty() {
                    self.run_cold(input, &config, &opts, deadline, start)
                } else {
                    result
                }
            }
            Plan::Partial => {
                let snapshot = opts.snapshot.take().expect("dispatch saw a snapshot");
                let result =
                    self.run_partial_resume(input, &config, &opts, &snapshot, deadline, start);
                if result.top_k.is_empty() {
                    self.run_cold(input, &config, &opts, deadline, start)
                } else {
                    result
                }
            }
            Plan::Cold => self.run_cold(input, &config, &opts, deadline, start),
        };
        // Count the mode the run *actually* executed in (a resume plan
        // that degraded to cold counts once, as cold).
        if opts.telemetry.metrics.is_enabled() {
            opts.telemetry.metrics.counter_add(
                match result.mode {
                    RunMode::Cold => "run.mode.cold",
                    RunMode::ResumedExtraction => "run.mode.resumed_extraction",
                    RunMode::ResumedSaturation => "run.mode.resumed_saturation",
                },
                1,
            );
        }
        result
    }

    /// Extraction-only resume: restore the final graph, re-run extraction.
    fn run_extraction_resume(
        &self,
        input: &Cad,
        config: &SynthConfig,
        opts: &RunOptions,
        snapshot: SynthSnapshot,
        start: Instant,
    ) -> Synthesis {
        let &[root] = snapshot.egraph_snapshot().roots() else {
            unreachable!("dispatch checked for exactly one root");
        };
        let egraph = {
            let _span = opts.telemetry.span("pipeline", "snapshot.restore");
            snapshot.egraph_snapshot().restore(CadAnalysis)
        };
        let extract_span = opts.telemetry.span("pipeline", "extraction");
        let top_k = extract_top_k(&egraph, root, config);
        let pareto = extract_pareto(&egraph, root, config);
        drop(extract_span);
        Synthesis {
            input: input.clone(),
            top_k,
            records: Vec::new(),
            time: start.elapsed(),
            egraph_nodes: egraph.total_number_of_nodes(),
            egraph_classes: egraph.number_of_classes(),
            stop_reason: None,
            iterations: 0,
            rule_stats: Vec::new(),
            mode: RunMode::ResumedExtraction,
            // The offered snapshot *is* this run's state: hand it back
            // (moved, not cloned, not re-serialized) when capture is on.
            snapshot: opts.capture.then_some(snapshot),
            pareto,
            telemetry: opts.telemetry.clone(),
        }
    }

    /// Partial-saturation resume: restore the saturation-phase runner and
    /// continue with the remaining iteration budget, then re-run the
    /// inference passes and extraction.
    fn run_partial_resume(
        &self,
        input: &Cad,
        config: &SynthConfig,
        opts: &RunOptions,
        snapshot: &SynthSnapshot,
        deadline: Option<Instant>,
        start: Instant,
    ) -> Synthesis {
        let phase = snapshot.sat_phase().expect("dispatch checked");
        let remaining = config.iter_limit.saturating_sub(phase.iterations());
        let restore_span = opts.telemetry.span("pipeline", "snapshot.restore");
        let runner = Runner::resume_from(phase.snapshot(), CadAnalysis)
            .with_iter_limit(remaining)
            .with_node_limit(config.node_limit)
            .with_time_limit(config.time_limit);
        drop(restore_span);
        let sat_span = opts.telemetry.span("pipeline", "saturation");
        let runner = configure_runner(runner, opts, deadline).run(&self.ruleset);
        drop(sat_span);
        let root = runner.roots[0];
        self.finish_from_runner(
            input,
            config,
            opts,
            runner,
            // The producing legs' persisted lifetime counts: this leg's
            // totals are merged on top (see `finish_from_runner`).
            phase.rule_stats().to_vec(),
            root,
            RunMode::ResumedSaturation,
            deadline,
            start,
        )
    }

    /// Cold run: build the graph and drive the main loop. Single-round
    /// configs (the default, and the only shape that can partially
    /// resume) share [`Synthesizer::finish_from_runner`] with the
    /// partial-resume path, so the two trajectories cannot drift apart;
    /// multi-round configs keep their own loop below.
    fn run_cold(
        &self,
        input: &Cad,
        config: &SynthConfig,
        opts: &RunOptions,
        deadline: Option<Instant>,
        start: Instant,
    ) -> Synthesis {
        let scheduler = if config.backoff {
            Scheduler::backoff()
        } else {
            Scheduler::Simple
        };
        let expr = cad_to_lang(input);
        let mut egraph = CadGraph::new(CadAnalysis);
        let root = egraph.add_expr(&expr);
        egraph.rebuild();

        let new_runner = |egraph: CadGraph, scheduler: Scheduler| {
            configure_runner(
                Runner::new(CadAnalysis)
                    .with_egraph(egraph)
                    .with_iter_limit(config.iter_limit)
                    .with_node_limit(config.node_limit)
                    .with_time_limit(config.time_limit)
                    .with_scheduler(scheduler),
                opts,
                deadline,
            )
        };

        if config.main_loop_fuel == 1 {
            let sat_span = opts.telemetry.span("pipeline", "saturation");
            let runner = new_runner(egraph, scheduler).run(&self.ruleset);
            drop(sat_span);
            return self.finish_from_runner(
                input,
                config,
                opts,
                runner,
                Vec::new(),
                root,
                RunMode::Cold,
                deadline,
                start,
            );
        }

        // Multi-round main loop (saturation → inference, repeated). No
        // saturation-phase capture: multi-round snapshots are never
        // partially resumable (see `SynthSnapshot::supports_partial_resume`).
        let ctl = pass_control(opts, deadline);
        let mut records = Vec::new();
        let mut stop_reason = None;
        let mut iterations = 0usize;
        let mut rule_stats: Vec<RuleStat> = Vec::new();
        let mut cancelled = false;
        let last_round = config.main_loop_fuel - 1;
        for round in 0..config.main_loop_fuel {
            let mut runner = new_runner(
                std::mem::replace(&mut egraph, CadGraph::new(CadAnalysis)),
                scheduler.clone(),
            );
            // Lifetime iteration indices for the progress observer span
            // rounds.
            runner.prior_iterations = iterations;
            let sat_span = opts.telemetry.span("pipeline", "saturation");
            let runner = runner.run(&self.ruleset);
            drop(sat_span);
            iterations += runner.iterations.len();
            stop_reason = runner.stop_reason.clone();
            merge_rule_stats(&mut rule_stats, runner.rule_totals());
            cancelled = stop_reason == Some(StopReason::Cancelled);
            egraph = runner.egraph;
            if cancelled {
                // Stop as soon as possible: skip the inference passes and
                // extract whatever the partial graph holds.
                break;
            }

            let infer_span = opts.telemetry.span("pipeline", "inference");
            let (round_records, truncated) = run_inference_passes(&mut egraph, config.eps, &ctl);
            drop(infer_span);
            records.extend(round_records);

            // A truncated inference pass left a wall-clock-dependent
            // graph: that is a cancellation. A stop that fires between
            // rounds merely skips the remaining (whole) rounds — also a
            // cancellation, but only when rounds actually remain: a run
            // whose passes all completed is the deterministic product of
            // its config even if the deadline expired just afterwards.
            if truncated || (round != last_round && ctl.should_stop()) {
                stop_reason = Some(StopReason::Cancelled);
                cancelled = true;
                if let Some(progress) = &opts.progress {
                    progress.on_stop(&StopReason::Cancelled);
                }
                break;
            }
        }

        let snapshot = if opts.capture && !cancelled {
            let _span = opts.telemetry.span("pipeline", "snapshot.capture");
            capture_snapshot(Snapshot::of_egraph(&egraph, &[root]))
                .map(|s| s.with_iterations(iterations))
                .map(|s| SynthSnapshot::new(input, config, s))
        } else {
            None
        };

        let extract_span = opts.telemetry.span("pipeline", "extraction");
        let top_k = extract_top_k(&egraph, root, config);
        let pareto = extract_pareto(&egraph, root, config);
        drop(extract_span);
        Synthesis {
            input: input.clone(),
            top_k,
            records,
            time: start.elapsed(),
            egraph_nodes: egraph.total_number_of_nodes(),
            egraph_classes: egraph.number_of_classes(),
            stop_reason,
            iterations,
            rule_stats,
            mode: RunMode::Cold,
            snapshot,
            pareto,
            telemetry: opts.telemetry.clone(),
        }
    }

    /// Shared tail of the single-round cold and partial-resume paths:
    /// run the inference passes (unless cancelled), capture, extract,
    /// assemble the [`Synthesis`]. Sharing this tail is what keeps the
    /// two trajectories provably identical (the partial-resume
    /// differential suite depends on it).
    ///
    /// `prior_stats` are the producing legs' lifetime per-rule counts
    /// (from the resumed snapshot's saturation phase; empty for cold
    /// runs): this leg's totals are merged on top so
    /// [`Synthesis::rule_stats`] always reports lifetime counts.
    #[allow(clippy::too_many_arguments)]
    fn finish_from_runner(
        &self,
        input: &Cad,
        config: &SynthConfig,
        opts: &RunOptions,
        mut runner: Runner<crate::CadLang, CadAnalysis>,
        prior_stats: Vec<RuleStat>,
        root: sz_egraph::Id,
        mode: RunMode,
        deadline: Option<Instant>,
        start: Instant,
    ) -> Synthesis {
        let iterations = runner.iterations.len();
        let lifetime_iterations = runner.prior_iterations + iterations;
        let mut stop_reason = runner.stop_reason.clone();
        let mut rule_stats = prior_stats;
        merge_rule_stats(&mut rule_stats, runner.rule_totals());
        let mut cancelled = stop_reason == Some(StopReason::Cancelled);
        let mut sat_phase: Option<Snapshot<crate::CadLang>> = None;
        if opts.capture && !cancelled {
            let _span = opts.telemetry.span("pipeline", "snapshot.capture");
            runner.roots = vec![root];
            sat_phase = capture_snapshot(runner.snapshot());
        }
        let mut egraph = runner.egraph;
        let records = if cancelled {
            Vec::new()
        } else {
            let ctl = pass_control(opts, deadline);
            let infer_span = opts.telemetry.span("pipeline", "inference");
            let (records, truncated) = run_inference_passes(&mut egraph, config.eps, &ctl);
            drop(infer_span);
            // A *truncated* inference stage left a partially-inferred
            // (wall-clock-dependent) graph: report it as a cancellation
            // and never capture the state. A deadline that expired only
            // after every pass completed changes nothing — the graph is
            // still the deterministic product of the config.
            if truncated {
                stop_reason = Some(StopReason::Cancelled);
                cancelled = true;
                sat_phase = None;
                if let Some(progress) = &opts.progress {
                    progress.on_stop(&StopReason::Cancelled);
                }
            }
            records
        };

        let snapshot = if opts.capture && !cancelled {
            let _span = opts.telemetry.span("pipeline", "snapshot.capture");
            capture_snapshot(Snapshot::of_egraph(&egraph, &[root]))
                .map(|s| s.with_iterations(lifetime_iterations))
                .map(|s| {
                    let synth = SynthSnapshot::new(input, config, s);
                    match sat_phase.take() {
                        // Persist the lifetime counts alongside the phase
                        // state so the *next* resumed leg can keep
                        // accumulating.
                        Some(phase) => synth.with_sat_phase(
                            SatPhase::new(config, phase).with_rule_stats(rule_stats.clone()),
                        ),
                        None => synth,
                    }
                })
        } else {
            None
        };

        let extract_span = opts.telemetry.span("pipeline", "extraction");
        let top_k = extract_top_k(&egraph, root, config);
        let pareto = extract_pareto(&egraph, root, config);
        drop(extract_span);
        Synthesis {
            input: input.clone(),
            top_k,
            records,
            time: start.elapsed(),
            egraph_nodes: egraph.total_number_of_nodes(),
            egraph_classes: egraph.number_of_classes(),
            stop_reason,
            iterations,
            rule_stats,
            mode,
            snapshot,
            pareto,
            telemetry: opts.telemetry.clone(),
        }
    }
}

/// Builds the inference passes' [`PassControl`] from a run's
/// cancellation options.
fn pass_control(opts: &RunOptions, deadline: Option<Instant>) -> PassControl {
    let mut ctl = PassControl::new();
    if let Some(token) = &opts.cancel {
        ctl = ctl.with_cancel_token(token.clone());
    }
    if let Some(deadline) = deadline {
        ctl = ctl.with_deadline(deadline);
    }
    ctl
}

/// One round of the non-saturation pipeline passes (determ + list_manip
/// sorted-list variants, then solver-driven function and loop
/// inference), returning what the solvers did plus whether the stage was
/// **truncated** — stopped with inference work left undone. Shared
/// verbatim by the single-round cold, multi-round cold, and
/// partial-resume paths so their trajectories cannot drift apart. `ctl`
/// is polled between list sites and between passes, so a deadline
/// interrupts inference mid-pass instead of waiting for the next
/// saturation boundary; a stage whose passes all ran to completion
/// reports `false` even if the stop condition became true afterwards.
fn run_inference_passes(
    egraph: &mut CadGraph,
    eps: f64,
    ctl: &PassControl,
) -> (Vec<crate::InferenceRecord>, bool) {
    let mut records = Vec::new();
    list_manipulation(egraph);
    egraph.rebuild();
    // The passes themselves report truncation (they know whether any
    // site was actually skipped — a stop with no sites left is still a
    // deterministic product, not a truncation).
    let (recs, truncated) = infer_functions_with(egraph, eps, ctl);
    records.extend(recs);
    egraph.rebuild();
    if truncated {
        return (records, true);
    }
    let (recs, truncated) = infer_loops_with(egraph, eps, ctl);
    records.extend(recs);
    egraph.rebuild();
    (records, truncated)
}

/// Applies a run's cancellation/deadline/progress options to a runner.
fn configure_runner(
    mut runner: Runner<crate::CadLang, CadAnalysis>,
    opts: &RunOptions,
    deadline: Option<Instant>,
) -> Runner<crate::CadLang, CadAnalysis> {
    if let Some(token) = &opts.cancel {
        runner = runner.with_cancel_token(token.clone());
    }
    if let Some(deadline) = deadline {
        runner = runner.with_deadline(deadline);
    }
    if let Some(progress) = &opts.progress {
        runner = runner.with_progress(Arc::clone(progress));
    }
    if opts.telemetry.is_enabled() {
        runner = runner.with_telemetry(opts.telemetry.clone());
    }
    runner
}

/// Unwraps a snapshot capture. The main loop always rebuilds before
/// returning, so `NotClean` cannot happen; debug builds assert, release
/// builds degrade to "no snapshot captured".
fn capture_snapshot(
    result: Result<Snapshot<crate::CadLang>, SnapshotError>,
) -> Option<Snapshot<crate::CadLang>> {
    debug_assert!(result.is_ok(), "pipeline snapshots a clean graph");
    result.ok()
}

/// Folds one round's per-rule totals into the running totals (matched by
/// name; every round runs the same rule set, so order is stable).
pub(crate) fn merge_rule_stats(totals: &mut Vec<RuleStat>, round: Vec<RuleStat>) {
    for stat in round {
        match totals.iter_mut().find(|t| t.name == stat.name) {
            Some(total) => total.absorb(&stat),
            None => totals.push(stat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostKind;

    fn row_of_cubes(n: usize, spacing: f64) -> Cad {
        Cad::union_chain(
            (1..=n)
                .map(|i| Cad::translate(spacing * i as f64, 0.0, 0.0, Cad::Unit))
                .collect(),
        )
    }

    fn quick() -> SynthConfig {
        SynthConfig::new()
            .with_iter_limit(20)
            .with_node_limit(20_000)
    }

    #[test]
    fn session_is_send_sync_and_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Synthesizer>();
        assert_send_sync::<RunOptions>();
        assert_send_sync::<RunLimits>();

        // One session, many threads: results must match a lone run.
        let session = Arc::new(Synthesizer::new(quick()));
        let lone = session
            .run(&row_of_cubes(4, 2.0), RunOptions::new())
            .unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let session = Arc::clone(&session);
                std::thread::spawn(move || {
                    session
                        .run(&row_of_cubes(4, 2.0), RunOptions::new())
                        .unwrap()
                })
            })
            .collect();
        for handle in handles {
            let result = handle.join().unwrap();
            assert_eq!(result.best().cad.to_string(), lone.best().cad.to_string());
        }
    }

    #[test]
    fn sessions_share_one_compiled_ruleset() {
        let a = Synthesizer::new(quick());
        let b = Synthesizer::new(quick().with_k(9));
        assert!(Arc::ptr_eq(&a.ruleset, &b.ruleset));
        let structural = Synthesizer::new(quick().with_structural_rules(true));
        assert!(!Arc::ptr_eq(&a.ruleset, &structural.ruleset));
        assert!(structural.rule_count() > a.rule_count());
    }

    #[test]
    fn builtin_rulesets_are_lint_clean() {
        // Both cached rule sets must construct through the checked path
        // (deny findings would make `try_new` fail) and share one report
        // per ruleset, computed once.
        let base = Synthesizer::try_new(quick()).expect("base rules are lint-clean");
        assert!(base.lint_report().is_clean());
        let again = Synthesizer::new(quick());
        assert!(Arc::ptr_eq(base.lint_report(), again.lint_report()));

        let structural = Synthesizer::try_new(quick().with_structural_rules(true))
            .expect("structural rules are lint-clean");
        assert!(structural.lint_report().is_clean());
        // The structural set carries the comm/assoc rules, which the
        // analyzer flags info-level as self-inverse/expansive — kept for
        // audit, never a construction failure.
        assert!(structural.lint_report().info_count() > 0);
    }

    #[test]
    fn rule_lint_error_displays_deny_findings() {
        use sz_lint::{Diagnostic, Report, Severity};
        let mut report = Report::new();
        report.push(Diagnostic::new(
            Severity::Deny,
            "SZL001",
            "rule:bad",
            "rhs variable ?c is not bound by the lhs; applying this rule panics",
        ));
        let err = SynthError::RuleLint(Arc::new(report));
        let text = err.to_string();
        assert!(text.contains("1 deny finding"), "{text}");
        assert!(text.contains("SZL001"), "{text}");
        assert!(text.contains("rule:bad"), "{text}");
    }

    #[test]
    fn run_rejects_non_flat_input() {
        let looped: Cad = "(Repeat Unit 3)".parse().unwrap();
        let session = Synthesizer::new(quick());
        assert_eq!(
            session.run(&looped, RunOptions::new()).unwrap_err(),
            SynthError::NotFlat
        );
    }

    #[test]
    fn capture_then_exact_resume_is_extraction_only() {
        let flat = row_of_cubes(5, 2.0);
        let session = Synthesizer::new(quick());
        let cold = session
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap();
        assert_eq!(cold.mode, RunMode::Cold);
        let snapshot = cold.snapshot.clone().expect("capture requested");
        assert!(
            snapshot.sat_phase().is_some(),
            "single-round capture carries the sat phase"
        );

        let resumed = session
            .run(&flat, RunOptions::new().with_snapshot(snapshot))
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedExtraction);
        assert_eq!(resumed.iterations, 0);
        let progs = |s: &Synthesis| -> Vec<(usize, String)> {
            s.top_k
                .iter()
                .map(|p| (p.cost, p.cad.to_string()))
                .collect()
        };
        assert_eq!(progs(&resumed), progs(&cold));
    }

    #[test]
    fn lower_fuel_snapshot_continues_saturating() {
        let flat = row_of_cubes(5, 2.0);
        let low = Synthesizer::new(quick().with_iter_limit(3));
        let snapshot = low
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap()
            .snapshot
            .unwrap();

        let high_config = quick().with_iter_limit(40);
        let high = Synthesizer::new(high_config);
        let cold = high.run(&flat, RunOptions::new()).unwrap();
        let resumed = high
            .run(&flat, RunOptions::new().with_snapshot(snapshot))
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedSaturation);
        assert!(
            resumed.iterations < cold.iterations,
            "resumed leg ({}) must spend strictly fewer iterations than cold ({})",
            resumed.iterations,
            cold.iterations
        );
        let progs = |s: &Synthesis| -> Vec<(usize, String)> {
            s.top_k
                .iter()
                .map(|p| (p.cost, p.cad.to_string()))
                .collect()
        };
        assert_eq!(progs(&resumed), progs(&cold));
        assert_eq!(resumed.egraph_nodes, cold.egraph_nodes);
        assert_eq!(resumed.egraph_classes, cold.egraph_classes);
    }

    #[test]
    fn partial_resume_merges_rule_stats_across_legs() {
        // The producing leg's per-rule counts are persisted in the
        // snapshot (through a text round-trip, like an on-disk cache)
        // and the resumed leg reports *lifetime* totals — identical to
        // the counts a cold run at the higher fuel accumulates, since
        // the two trajectories are the same saturation, split in two.
        let flat = row_of_cubes(5, 2.0);
        let low = Synthesizer::new(quick().with_iter_limit(3));
        let low_run = low
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap();
        let snapshot: SynthSnapshot = low_run
            .snapshot
            .unwrap()
            .to_string()
            .parse()
            .expect("persisted snapshots parse back");
        assert!(
            !snapshot.sat_phase().unwrap().rule_stats().is_empty(),
            "the capture persists the producing leg's rule counts"
        );

        let high = Synthesizer::new(quick().with_iter_limit(40));
        let cold = high.run(&flat, RunOptions::new()).unwrap();
        let resumed = high
            .run(&flat, RunOptions::new().with_snapshot(snapshot))
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedSaturation);

        // Wall times are leg-local and nondeterministic; the counts are
        // deterministic and must be lifetime totals.
        let counts =
            |stats: &[RuleStat]| -> std::collections::BTreeMap<String, (usize, usize, usize)> {
                stats
                    .iter()
                    .map(|s| (s.name.clone(), (s.matches, s.applied, s.times_banned)))
                    .collect()
            };
        assert_eq!(counts(&resumed.rule_stats), counts(&cold.rule_stats));
        // And strictly more than the resumed leg alone searched: the low
        // leg's work is included.
        let low_matches: usize = low_run.rule_stats.iter().map(|s| s.matches).sum();
        let resumed_matches: usize = resumed.rule_stats.iter().map(|s| s.matches).sum();
        assert!(resumed_matches >= low_matches);
    }

    #[test]
    fn telemetry_records_phases_and_mode_counters() {
        let flat = row_of_cubes(5, 2.0);
        let session = Synthesizer::new(quick());
        let telemetry = Telemetry::enabled();
        let traced = session
            .run(
                &flat,
                RunOptions::new()
                    .with_telemetry(telemetry.clone())
                    .capture_snapshot(true),
            )
            .unwrap();
        assert!(traced.telemetry.is_enabled());

        // Phase spans: saturation, inference, extraction, capture all ran.
        let events = telemetry.tracer.events();
        let count = |name: &str| {
            events
                .iter()
                .filter(|s| s.cat == "pipeline" && s.name == name)
                .count()
        };
        assert_eq!(count("saturation"), 1);
        assert_eq!(count("inference"), 1);
        assert_eq!(count("extraction"), 1);
        assert_eq!(count("snapshot.capture"), 2, "sat-phase + final graph");
        // Runner spans rode along on the same tracer.
        assert!(events
            .iter()
            .any(|s| s.cat == "runner" && s.name == "iteration"));
        assert_eq!(
            telemetry.metrics.counter("run.mode.cold"),
            1,
            "the run counted itself as cold"
        );
        assert_eq!(
            telemetry.metrics.counter("runner.iterations"),
            traced.iterations as u64
        );

        // An extraction resume tags restore + mode.
        let resumed = session
            .run(
                &flat,
                RunOptions::new()
                    .with_snapshot(traced.snapshot.clone().unwrap())
                    .with_telemetry(telemetry.clone()),
            )
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedExtraction);
        assert_eq!(telemetry.metrics.counter("run.mode.resumed_extraction"), 1);
        assert!(telemetry
            .tracer
            .events()
            .iter()
            .any(|s| s.cat == "pipeline" && s.name == "snapshot.restore"));

        // The traced result is byte-identical to an untraced one.
        let untraced = session.run(&flat, RunOptions::new()).unwrap();
        assert_eq!(
            traced.best().cad.to_string(),
            untraced.best().cad.to_string()
        );
    }

    #[test]
    fn incompatible_snapshot_falls_back_to_cold() {
        let flat = row_of_cubes(4, 2.0);
        let low = Synthesizer::new(quick().with_iter_limit(3));
        let snapshot = low
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap()
            .snapshot
            .unwrap();

        // eps changes the core fingerprint: neither resume flavor fits.
        let other = Synthesizer::new(quick().with_eps(1e-2));
        let result = other
            .run(&flat, RunOptions::new().with_snapshot(snapshot.clone()))
            .unwrap();
        assert_eq!(result.mode, RunMode::Cold);
        assert!(result.iterations > 0);

        // Wrong input: also cold.
        let result = other
            .run(
                &row_of_cubes(3, 2.0),
                RunOptions::new().with_snapshot(snapshot),
            )
            .unwrap();
        assert_eq!(result.mode, RunMode::Cold);
    }

    #[test]
    fn run_limit_overrides_participate_in_dispatch() {
        // A snapshot captured at the session's default fuel is reused by
        // a *higher* per-run iter override via partial resume.
        let flat = row_of_cubes(5, 2.0);
        let session = Synthesizer::new(quick().with_iter_limit(3));
        let snapshot = session
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap()
            .snapshot
            .unwrap();
        let resumed = session
            .run(
                &flat,
                RunOptions::new()
                    .with_snapshot(snapshot)
                    .with_limits(RunLimits::new().with_iter_limit(40)),
            )
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedSaturation);
        let cold = session
            .run(
                &flat,
                RunOptions::new().with_limits(RunLimits::new().with_iter_limit(40)),
            )
            .unwrap();
        assert_eq!(resumed.best().cad.to_string(), cold.best().cad.to_string());
    }

    #[test]
    fn pre_cancelled_token_returns_wellformed_result() {
        let token = CancelToken::new();
        token.cancel();
        let session = Synthesizer::new(quick());
        let result = session
            .run(
                &row_of_cubes(5, 2.0),
                RunOptions::new()
                    .with_cancel_token(token)
                    .capture_snapshot(true),
            )
            .unwrap();
        assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        assert_eq!(result.iterations, 0);
        assert!(!result.top_k.is_empty(), "the input itself is extractable");
        assert!(result.snapshot.is_none(), "cancelled runs never capture");
    }

    #[test]
    fn pre_cancelled_run_skips_resume_work() {
        // A token triggered before the run starts must not pay for a
        // snapshot restore + extraction (batch shutdown over a warm
        // tier); the run degrades to a cancelled cold run immediately.
        let flat = row_of_cubes(4, 2.0);
        let session = Synthesizer::new(quick());
        let snapshot = session
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap()
            .snapshot
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let result = session
            .run(
                &flat,
                RunOptions::new()
                    .with_snapshot(snapshot)
                    .with_cancel_token(token),
            )
            .unwrap();
        assert_eq!(result.mode, RunMode::Cold);
        assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        assert_eq!(result.iterations, 0);
        assert!(!result.top_k.is_empty());
    }

    #[test]
    fn past_deadline_cancels_promptly() {
        // Structural rules make the graph explosive enough that a fast
        // release build cannot legitimately saturate inside the 1 ms
        // budget (a plain row saturates in under a millisecond on fast
        // machines, making `Saturated` the *correct* answer there).
        let session = Synthesizer::new(SynthConfig::new().with_structural_rules(true));
        let start = Instant::now();
        let result = session
            .run(
                &row_of_cubes(8, 2.0),
                RunOptions::new().with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        assert!(!result.top_k.is_empty());
        // "Promptly": bounded by one iteration + extraction, not the
        // full 150-iteration default budget. Generous margin for CI.
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "cancellation must not wait for the full run"
        );
    }

    #[test]
    fn progress_observer_is_called() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Default)]
        struct Counter(AtomicUsize);
        impl ProgressObserver for Counter {
            fn on_iteration(&self, _i: usize, _stats: &sz_egraph::Iteration) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Counter::default());
        let session = Synthesizer::new(quick());
        let result = session
            .run(
                &row_of_cubes(5, 2.0),
                RunOptions::new().with_progress(counter.clone()),
            )
            .unwrap();
        assert_eq!(counter.0.load(Ordering::Relaxed), result.iterations);
        assert!(result.iterations > 0);
    }

    #[test]
    fn unextractable_snapshot_degrades_to_cold() {
        // A snapshot can parse, match the input and fingerprint, and
        // still restore a graph that extracts no Cad program (here: a
        // bare number). The run must fall back cold, not fail — an
        // offered snapshot can slow a run down but never fail it.
        let flat = row_of_cubes(3, 2.0);
        let config = quick();
        let mut egraph = CadGraph::new(CadAnalysis);
        let root = egraph.add_expr(&"1".parse::<sz_egraph::RecExpr<crate::CadLang>>().unwrap());
        egraph.rebuild();
        let snap = Snapshot::of_egraph(&egraph, &[root]).unwrap();
        let bogus = SynthSnapshot::new(&flat, &config, snap);
        let session = Synthesizer::new(config);
        let result = session
            .run(&flat, RunOptions::new().with_snapshot(bogus))
            .unwrap();
        assert_eq!(result.mode, RunMode::Cold);
        assert!(result.iterations > 0);
        assert!(!result.top_k.is_empty());
    }

    #[test]
    fn with_limits_preserves_an_earlier_deadline() {
        // Both orders must keep the deadline; dropping it silently would
        // un-bound the exact runs the deadline API exists to bound.
        let a = RunOptions::new()
            .with_deadline(Duration::from_millis(1))
            .with_limits(RunLimits::new().with_iter_limit(40));
        assert_eq!(a.limits.deadline, Some(Duration::from_millis(1)));
        assert_eq!(a.limits.iter_limit, Some(40));
        let b = RunOptions::new()
            .with_limits(RunLimits::new().with_iter_limit(40))
            .with_deadline(Duration::from_millis(1));
        assert_eq!(b.limits.deadline, Some(Duration::from_millis(1)));
        // A deadline inside the new limits wins over the old one.
        let c = RunOptions::new()
            .with_deadline(Duration::from_millis(1))
            .with_limits(RunLimits::new().with_deadline(Duration::from_millis(7)));
        assert_eq!(c.limits.deadline, Some(Duration::from_millis(7)));
    }

    #[test]
    fn extraction_resume_hands_back_the_offered_snapshot_without_reserialization() {
        let flat = row_of_cubes(4, 2.0);
        let session = Synthesizer::new(quick());
        let snapshot = session
            .run(&flat, RunOptions::new().capture_snapshot(true))
            .unwrap()
            .snapshot
            .unwrap();
        let text = snapshot.to_string();
        let resumed = session
            .run(
                &flat,
                RunOptions::new()
                    .with_snapshot(snapshot)
                    .capture_snapshot(true),
            )
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedExtraction);
        assert_eq!(
            resumed.snapshot.unwrap().to_string(),
            text,
            "the offered snapshot is returned as this run's capture"
        );
    }

    #[test]
    fn multi_round_progress_indices_are_monotonic() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        #[derive(Default)]
        struct Monotonic {
            next_expected: AtomicUsize,
            violated: AtomicBool,
        }
        impl ProgressObserver for Monotonic {
            fn on_iteration(&self, lifetime_iteration: usize, _stats: &sz_egraph::Iteration) {
                let expected = self.next_expected.fetch_add(1, Ordering::Relaxed);
                if lifetime_iteration != expected {
                    self.violated.store(true, Ordering::Relaxed);
                }
            }
        }
        let observer = Arc::new(Monotonic::default());
        let session = Synthesizer::new(quick().with_main_loop_fuel(3).with_iter_limit(4));
        let result = session
            .run(
                &row_of_cubes(4, 2.0),
                RunOptions::new().with_progress(observer.clone()),
            )
            .unwrap();
        use std::sync::atomic::Ordering as O;
        assert!(
            !observer.violated.load(O::Relaxed),
            "lifetime iteration indices must be monotonic across rounds"
        );
        assert_eq!(observer.next_expected.load(O::Relaxed), result.iterations);
    }

    #[test]
    fn extraction_fields_still_configurable_per_session() {
        let flat = row_of_cubes(2, 2.0);
        let reward = Synthesizer::new(quick().with_cost(CostKind::RewardLoops));
        let result = reward.run(&flat, RunOptions::new()).unwrap();
        assert_eq!(result.structured().map(|(r, _)| r), Some(1));
    }

    #[test]
    fn run_options_pareto_yields_a_front() {
        use crate::cost::{AstSizeCost, DepthCost, GeomCount};
        let flat = row_of_cubes(5, 2.0);
        let session = Synthesizer::new(quick());
        // No pareto requested: the field is None.
        let plain = session.run(&flat, RunOptions::new()).unwrap();
        assert!(plain.pareto.is_none());

        let result = session
            .run(
                &flat,
                RunOptions::new().with_pareto(Arc::new(AstSizeCost), Arc::new(GeomCount)),
            )
            .unwrap();
        let front = result.pareto.expect("pareto requested");
        assert!(!front.is_empty());
        // Mutually non-dominating, ascending on the first objective.
        for w in front.windows(2) {
            assert!(w[0].costs[0] < w[1].costs[0]);
            assert!(w[0].costs[1] > w[1].costs[1]);
        }
        // The size-optimal point matches plain top-1 extraction.
        assert_eq!(
            front[0].cad.to_string(),
            plain.best().cad.to_string(),
            "first objective is the session's ranking cost"
        );

        // Same request via the config, with a different second objective.
        let configured =
            Synthesizer::new(quick().with_pareto(Arc::new(AstSizeCost), Arc::new(DepthCost)));
        let result = configured.run(&flat, RunOptions::new()).unwrap();
        assert!(result.pareto.is_some());
    }

    #[test]
    fn pareto_front_survives_extraction_resume() {
        use crate::cost::{AstSizeCost, GeomCount};
        let flat = row_of_cubes(4, 2.0);
        let session = Synthesizer::new(quick());
        let pareto_opts = || {
            RunOptions::new().with_pareto(
                Arc::new(AstSizeCost) as Arc<dyn CostModel>,
                Arc::new(GeomCount) as Arc<dyn CostModel>,
            )
        };
        let cold = session
            .run(&flat, pareto_opts().capture_snapshot(true))
            .unwrap();
        let snapshot = cold.snapshot.clone().unwrap();
        let resumed = session
            .run(&flat, pareto_opts().with_snapshot(snapshot))
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedExtraction);
        assert_eq!(resumed.iterations, 0);
        let points = |s: &Synthesis| -> Vec<([u64; 2], String)> {
            s.pareto
                .as_ref()
                .unwrap()
                .iter()
                .map(|p| (p.costs, p.cad.to_string()))
                .collect()
        };
        assert_eq!(points(&resumed), points(&cold));
    }

    #[test]
    fn cancellation_interrupts_inference_passes() {
        // The runner turns any cancel fired during saturation into a
        // saturation-boundary stop, so drive the inference stage
        // directly: saturate uncancelled, then run the shared
        // `run_inference_passes` tail under a triggered PassControl —
        // the solver passes must return early with no records.
        let flat = row_of_cubes(5, 2.0);
        let session = Synthesizer::new(quick());
        let saturate = || {
            let expr = crate::cad_to_lang(&flat);
            let mut egraph = CadGraph::new(CadAnalysis);
            egraph.add_expr(&expr);
            egraph.rebuild();
            Runner::new(CadAnalysis)
                .with_egraph(egraph)
                .with_iter_limit(20)
                .run(&session.ruleset)
                .egraph
        };

        let token = CancelToken::new();
        token.cancel();
        let ctl = PassControl::new().with_cancel_token(token);
        let mut egraph = saturate();
        let (records, truncated) = run_inference_passes(&mut egraph, 1e-3, &ctl);
        assert!(records.is_empty(), "stopped before any solver site ran");
        assert!(truncated, "solver sites were skipped");

        let mut egraph = saturate();
        let (records, truncated) = run_inference_passes(&mut egraph, 1e-3, &PassControl::new());
        assert!(!records.is_empty(), "idle control leaves inference intact");
        assert!(!truncated, "a completed stage is not a truncation");
    }
}
