//! List determinization (paper §4.2): choose, for every element of a list,
//! one consistent affine decomposition out of the (possibly exponentially
//! many) variants the rewrites created, so the function solvers get a
//! well-defined concrete query.

use sz_cad::AffineKind;
use sz_egraph::{Id, Language};

use crate::analysis::{vec_of, CadGraph};
use crate::CadLang;

/// One affine layer of a decomposed element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainLayer {
    /// The transformation kind.
    pub kind: AffineKind,
    /// Its concrete vector.
    pub vec: [f64; 3],
    /// The e-class of the vector (reusable when rebuilding terms).
    pub vec_id: Id,
    /// The e-class of the subterm under this layer.
    pub child: Id,
}

/// An element viewed as a chain of affine layers over a leaf class.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineChain {
    /// Outermost-first affine layers.
    pub layers: Vec<ChainLayer>,
    /// The class of the innermost (non-decomposed) subterm.
    pub leaf: Id,
}

impl AffineChain {
    /// The kind sequence, outermost first.
    pub fn signature(&self) -> Vec<AffineKind> {
        self.layers.iter().map(|l| l.kind).collect()
    }

    /// Lexicographic sort key over the concatenated layer vectors
    /// (paper §4.3's list sorting).
    pub fn sort_key(&self) -> Vec<sz_cad::OrderedF64> {
        self.layers
            .iter()
            .flat_map(|l| l.vec.iter().map(|&x| sz_cad::OrderedF64::new(x)))
            .collect()
    }
}

const MAX_CHAINS_PER_CLASS: usize = 64;
const MAX_DEPTH: usize = 8;

/// Enumerates affine decompositions of the class `id`, up to bounded
/// depth and count. Every class at least offers the trivial chain
/// (no layers, leaf = itself).
pub fn chains_of(egraph: &CadGraph, id: Id) -> Vec<AffineChain> {
    fn go(
        egraph: &CadGraph,
        id: Id,
        depth: usize,
        stack: &mut Vec<Id>,
        out_budget: &mut usize,
    ) -> Vec<AffineChain> {
        let id = egraph.find(id);
        let mut chains = vec![AffineChain {
            layers: Vec::new(),
            leaf: id,
        }];
        if depth >= MAX_DEPTH || stack.contains(&id) || *out_budget == 0 {
            return chains;
        }
        stack.push(id);
        // Split the budget fairly across this class's affine variants, so
        // one variant's deep expansion (rewrites stack reorderings at
        // every level) cannot starve the others — the original syntax
        // must always contribute a chain.
        let affine_nodes: Vec<&CadLang> = egraph
            .class_nodes(id)
            .filter(|n| n.affine_kind().is_some())
            .collect();
        let per_node = (*out_budget / affine_nodes.len().max(1)).max(4);
        for node in affine_nodes {
            let kind = node.affine_kind().expect("filtered to affine nodes");
            let [vec_id, child] = [node.children()[0], node.children()[1]];
            let Some(vec) = vec_of(egraph, vec_id) else {
                continue;
            };
            let layer = ChainLayer {
                kind,
                vec,
                vec_id: egraph.find(vec_id),
                child: egraph.find(child),
            };
            // Every node is guaranteed a minimal emission quota even when
            // the shared budget ran dry, so the original decomposition is
            // never starved out by a sibling's expansion.
            let mut node_budget = per_node.min((*out_budget).max(2));
            for sub in go(egraph, child, depth + 1, stack, &mut node_budget.clone()) {
                if node_budget == 0 {
                    break;
                }
                node_budget -= 1;
                let mut layers = Vec::with_capacity(sub.layers.len() + 1);
                layers.push(layer);
                layers.extend(sub.layers);
                chains.push(AffineChain {
                    layers,
                    leaf: sub.leaf,
                });
                *out_budget = out_budget.saturating_sub(1);
            }
        }
        stack.pop();
        chains
    }
    let mut budget = MAX_CHAINS_PER_CLASS;
    go(egraph, id, 0, &mut Vec::new(), &mut budget)
}

/// A determinized list: one chain per element, all sharing a signature.
#[derive(Debug, Clone)]
pub struct DetList {
    /// The common kind sequence (outermost first). May be empty when the
    /// elements have no common affine structure.
    pub signature: Vec<AffineKind>,
    /// `chains[i]` decomposes `elements[i]` under the signature.
    pub chains: Vec<AffineChain>,
}

/// Maximum number of alternative determinizations handed to the solvers.
const MAX_DETERMINIZATIONS: usize = 8;

/// Determinizes a list of element classes under **every** consistent
/// signature (longest first, up to a cap): for each signature admitted by
/// all elements, selects one matching chain per element (paper §4.2:
/// "pick an element and respect the same order for all others").
///
/// Returning all candidates rather than one is what lets the solvers
/// populate the e-graph with *diverse* parameterizations — e.g. both the
/// nested-loop and the trigonometric hex-cell programs of Figs. 18/19.
pub fn determinize_all(egraph: &CadGraph, elements: &[Id]) -> Vec<DetList> {
    determinize_up_to(egraph, elements, MAX_DETERMINIZATIONS)
}

fn determinize_up_to(egraph: &CadGraph, elements: &[Id], max: usize) -> Vec<DetList> {
    if elements.is_empty() {
        return Vec::new();
    }
    let all_chains: Vec<Vec<AffineChain>> =
        elements.iter().map(|&e| chains_of(egraph, e)).collect();
    // The matching loops below are quadratic in chains; precompute each
    // chain's signature and canonical leaf once instead of reallocating
    // them per comparison.
    let all_sigs: Vec<Vec<Vec<AffineKind>>> = all_chains
        .iter()
        .map(|chains| chains.iter().map(AffineChain::signature).collect())
        .collect();
    let all_leaves: Vec<Vec<Id>> = all_chains
        .iter()
        .map(|chains| chains.iter().map(|c| egraph.find(c.leaf)).collect())
        .collect();

    // Candidate signatures from element 0, longest first.
    let mut candidates: Vec<Vec<AffineKind>> = all_sigs[0].clone();
    candidates.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    candidates.dedup();

    let mut out: Vec<DetList> = Vec::new();
    for sig in candidates {
        // Prefer a *coordinated* choice: all elements decomposed over the
        // same leaf class (this is what lets `Mapi … (Repeat leaf n)`
        // arise — e.g. every gear tooth bottoming out at the same
        // `Translate(125,0,0, tooth)` subterm rather than at per-element
        // reordered variants).
        let mut chosen: Option<Vec<AffineChain>> = None;
        'leaf: for (i0, c0) in all_chains[0]
            .iter()
            .enumerate()
            .filter(|&(i0, _)| all_sigs[0][i0] == sig)
        {
            let leaf0 = all_leaves[0][i0];
            let mut chains = vec![c0.clone()];
            for (e, elem_chains) in all_chains.iter().enumerate().skip(1) {
                match elem_chains
                    .iter()
                    .enumerate()
                    .find(|&(j, _)| all_sigs[e][j] == sig && all_leaves[e][j] == leaf0)
                {
                    Some((_, c)) => chains.push(c.clone()),
                    None => continue 'leaf,
                }
            }
            chosen = Some(chains);
            break;
        }
        // Fall back to first-found per element (leaves may then differ).
        if chosen.is_none() {
            let mut chains = Vec::with_capacity(elements.len());
            let mut ok = true;
            for (e, elem_chains) in all_chains.iter().enumerate() {
                match elem_chains
                    .iter()
                    .enumerate()
                    .find(|&(j, _)| all_sigs[e][j] == sig)
                {
                    Some((_, c)) => chains.push(c.clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                chosen = Some(chains);
            }
        }
        if let Some(chains) = chosen {
            out.push(DetList {
                signature: sig,
                chains,
            });
            if out.len() >= max {
                break;
            }
        }
    }
    out
}

/// The single preferred determinization (the longest consistent
/// signature); see [`determinize_all`]. Stops at the first hit rather
/// than materializing all candidates.
pub fn determinize(egraph: &CadGraph, elements: &[Id]) -> Option<DetList> {
    determinize_up_to(egraph, elements, 1).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CadAnalysis;
    use sz_egraph::{RecExpr, Runner};

    fn graph(s: &str) -> (CadGraph, Id) {
        let mut eg = CadGraph::default();
        let expr: RecExpr<CadLang> = s.parse().unwrap();
        let id = eg.add_expr(&expr);
        eg.rebuild();
        (eg, id)
    }

    #[test]
    fn single_affine_chain() {
        let (eg, id) = graph("(Translate (Vec3 2 0 0) Unit)");
        let chains = chains_of(&eg, id);
        // Trivial chain + the one-layer decomposition.
        assert_eq!(chains.len(), 2);
        let full = chains.iter().find(|c| c.layers.len() == 1).unwrap();
        assert_eq!(full.layers[0].kind, AffineKind::Translate);
        assert_eq!(full.layers[0].vec, [2.0, 0.0, 0.0]);
    }

    #[test]
    fn nested_chain_and_leaf() {
        let (eg, id) =
            graph("(Translate (Vec3 1 0 0) (Rotate (Vec3 0 0 30) (Scale (Vec3 2 2 2) Sphere)))");
        let chains = chains_of(&eg, id);
        let full = chains.iter().max_by_key(|c| c.layers.len()).unwrap();
        assert_eq!(
            full.signature(),
            vec![AffineKind::Translate, AffineKind::Rotate, AffineKind::Scale]
        );
        let sphere = eg.lookup_expr(&"Sphere".parse().unwrap()).unwrap();
        assert_eq!(eg.find(full.leaf), eg.find(sphere));
    }

    #[test]
    fn determinize_uniform_list() {
        let (mut eg, _) = graph("Nil");
        let e1 = eg.add_expr(&"(Translate (Vec3 2 0 0) Unit)".parse().unwrap());
        let e2 = eg.add_expr(&"(Translate (Vec3 4 0 0) Unit)".parse().unwrap());
        eg.rebuild();
        let det = determinize(&eg, &[e1, e2]).unwrap();
        assert_eq!(det.signature, vec![AffineKind::Translate]);
        assert_eq!(det.chains[0].layers[0].vec, [2.0, 0.0, 0.0]);
        assert_eq!(det.chains[1].layers[0].vec, [4.0, 0.0, 0.0]);
    }

    #[test]
    fn determinize_resolves_reordered_variants() {
        // Element 2 is written Scale∘Rotate; after the reorder rule both
        // orders live in its class, so the determinizer can match
        // element 1's Rotate∘Scale signature.
        let (mut eg, _) = graph("Nil");
        let e1 = eg.add_expr(
            &"(Rotate (Vec3 0 0 30) (Scale (Vec3 2 2 2) Unit))"
                .parse()
                .unwrap(),
        );
        let e2 = eg.add_expr(
            &"(Scale (Vec3 3 3 3) (Rotate (Vec3 0 0 60) Unit))"
                .parse()
                .unwrap(),
        );
        eg.rebuild();
        let runner = Runner::new(CadAnalysis)
            .with_egraph(eg)
            .with_iter_limit(3)
            .run(&crate::rules::reordering_rules());
        let eg = runner.egraph;
        let dets = determinize_all(&eg, &[e1, e2]);
        let det = dets
            .iter()
            .find(|d| d.signature == vec![AffineKind::Rotate, AffineKind::Scale])
            .expect("element 1's ordering must be available for both");
        assert_eq!(det.chains[1].layers[0].vec, [0.0, 0.0, 60.0]);
        assert_eq!(det.chains[1].layers[1].vec, [3.0, 3.0, 3.0]);
        // The other ordering is offered as well (diversity for top-k).
        assert!(dets
            .iter()
            .any(|d| d.signature == vec![AffineKind::Scale, AffineKind::Rotate]));
    }

    #[test]
    fn determinize_mixed_depth_falls_back() {
        let (mut eg, _) = graph("Nil");
        let e1 = eg.add_expr(&"(Translate (Vec3 2 0 0) Unit)".parse().unwrap());
        let e2 = eg.add_expr(&"Unit".parse().unwrap());
        eg.rebuild();
        let det = determinize(&eg, &[e1, e2]).unwrap();
        // Only the empty signature is common.
        assert!(det.signature.is_empty());
    }

    #[test]
    fn chains_survive_identity_cycles() {
        // identity-translate unions (Translate 0 c) with c, creating a
        // self-referential class; chain enumeration must terminate.
        let (mut eg, id) = graph("(Translate (Vec3 0 0 0) Unit)");
        let unit = eg.lookup_expr(&"Unit".parse().unwrap()).unwrap();
        eg.union(id, unit);
        eg.rebuild();
        let chains = chains_of(&eg, id);
        assert!(!chains.is_empty());
    }

    #[test]
    fn sort_key_orders_lexicographically() {
        let (mut eg, _) = graph("Nil");
        let e1 = eg.add_expr(&"(Translate (Vec3 4 0 0) Unit)".parse().unwrap());
        let e2 = eg.add_expr(&"(Translate (Vec3 2 0 0) Unit)".parse().unwrap());
        eg.rebuild();
        let det = determinize(&eg, &[e1, e2]).unwrap();
        assert!(det.chains[0].sort_key() > det.chains[1].sort_key());
    }
}
