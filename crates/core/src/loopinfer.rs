//! Nested loop inference (paper §5): m-factorization and m-index-sets for
//! regular grids, plus the grouping fallback for irregular loops.

use std::collections::HashSet;

use sz_cad::{AffineKind, BoolOp, Expr};
use sz_egraph::Id;
use sz_solver::{fit_sequence, FittedFn};

use crate::analysis::CadGraph;
use crate::determinize::determinize_all;
use crate::funcinfer::{add_affine_exprs, InferenceRecord, LoopShape, PassControl};
use crate::lists::{add_num, fold_sites, read_list};
use crate::CadLang;

/// Returns every ordered `m`-tuple of factors of `n`, all factors ≥ 2
/// (the paper's m-factorization with trivial factors removed).
///
/// # Examples
///
/// ```
/// use szalinski::factorizations;
/// assert_eq!(factorizations(4, 2), vec![vec![2, 2]]);
/// assert_eq!(factorizations(6, 2), vec![vec![2, 3], vec![3, 2]]);
/// assert!(factorizations(7, 2).is_empty());
/// ```
pub fn factorizations(n: usize, m: usize) -> Vec<Vec<usize>> {
    fn go(n: usize, m: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if m == 1 {
            if n >= 2 {
                acc.push(n);
                out.push(acc.clone());
                acc.pop();
            }
            return;
        }
        for f in 2..=n / 2 {
            if n.is_multiple_of(f) {
                acc.push(f);
                go(n / f, m - 1, acc, out);
                acc.pop();
            }
        }
    }
    let mut out = Vec::new();
    go(n, m, &mut Vec::new(), &mut out);
    out
}

/// Computes the m-index-set (paper Fig. 13): for bounds `[f1, .., fm]`,
/// the list of index tuples in row-major order, as one vector per index
/// position. For `[2, 2]` this is `[[0,0,1,1], [0,1,0,1]]`.
pub fn index_sets(factors: &[usize]) -> Vec<Vec<usize>> {
    let total: usize = factors.iter().product();
    let mut sets = vec![vec![0usize; total]; factors.len()];
    // Each position (from the right) holds digit `(flat / stride) % f`,
    // where `stride` is the product of the factors to its right.
    let mut stride = 1usize;
    for (set, &f) in sets.iter_mut().zip(factors.iter()).rev() {
        for (flat, slot) in set.iter_mut().enumerate() {
            *slot = (flat / stride) % f;
        }
        stride *= f;
    }
    sets
}

/// How one vector component relates to the loop indices.
enum CompForm {
    Const(f64),
    DependsOn(usize, FittedFn),
}

/// Finds, for one component's value list, either a constant or a single
/// index it depends on (with a fitted closed form over that index).
fn component_form(
    values: &[f64],
    sets: &[Vec<usize>],
    factors: &[usize],
    eps: f64,
) -> Option<CompForm> {
    let spread = values.iter().cloned().fold(f64::MIN, f64::max)
        - values.iter().cloned().fold(f64::MAX, f64::min);
    if spread <= 2.0 * eps {
        return Some(CompForm::Const(sz_solver::snap(
            values.iter().sum::<f64>() / values.len() as f64,
            2.0 * eps,
        )));
    }
    for (d, idx) in sets.iter().enumerate() {
        // Functional in index d: equal index value ⟹ equal component.
        let mut reps: Vec<Option<f64>> = vec![None; factors[d]];
        let mut functional = true;
        for (pos, &iv) in idx.iter().enumerate() {
            match reps[iv] {
                None => reps[iv] = Some(values[pos]),
                Some(r) => {
                    if (r - values[pos]).abs() > 2.0 * eps {
                        functional = false;
                        break;
                    }
                }
            }
        }
        if !functional {
            continue;
        }
        let seq: Vec<f64> = reps.into_iter().map(|r| r.expect("covered")).collect();
        if let Some(f) = fit_sequence(&seq, eps) {
            return Some(CompForm::DependsOn(d, f));
        }
    }
    None
}

fn comp_expr(form: &CompForm, kind: AffineKind) -> Expr {
    match form {
        CompForm::Const(v) => Expr::num(*v),
        CompForm::DependsOn(d, f) => {
            if kind == AffineKind::Rotate {
                f.to_rotation_expr(*d as u8)
                    .unwrap_or_else(|| f.to_expr(*d as u8))
            } else {
                f.to_expr(*d as u8)
            }
        }
    }
}

fn form_tag(form: &CompForm) -> Option<String> {
    match form {
        CompForm::Const(_) => None,
        CompForm::DependsOn(_, f) => Some(f.kind_tag().to_owned()),
    }
}

/// Attempts regular nested-loop inference for one list; on success adds a
/// `MapIdx` variant and returns its record.
fn infer_regular(
    egraph: &mut CadGraph,
    list: Id,
    kind: AffineKind,
    vecs: &[[f64; 3]],
    child: Id,
    eps: f64,
) -> Option<InferenceRecord> {
    let n = vecs.len();
    for m in [2usize, 3] {
        for factors in factorizations(n, m) {
            let sets = index_sets(&factors);
            let mut forms = Vec::with_capacity(3);
            let mut used: HashSet<usize> = HashSet::new();
            let mut ok = true;
            for comp in 0..3 {
                let values: Vec<f64> = vecs.iter().map(|v| v[comp]).collect();
                match component_form(&values, &sets, &factors, eps) {
                    Some(form) => {
                        if let CompForm::DependsOn(d, _) = form {
                            used.insert(d);
                        }
                        forms.push(form);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            // Every loop variable must drive some component, otherwise the
            // inner loop just repeats rows and a single loop suffices.
            if !ok || used.len() != m {
                continue;
            }
            let exprs = [
                comp_expr(&forms[0], kind),
                comp_expr(&forms[1], kind),
                comp_expr(&forms[2], kind),
            ];
            let body = add_affine_exprs(egraph, kind, &exprs, child);
            let bounds: Vec<Id> = factors.iter().map(|&f| add_num(egraph, f as f64)).collect();
            let node = match m {
                2 => CadLang::MapIdx2([bounds[0], bounds[1], body]),
                _ => CadLang::MapIdx3([bounds[0], bounds[1], bounds[2], body]),
            };
            let mapidx = egraph.add(node);
            egraph.union(list, mapidx);
            let mut tags: Vec<String> = forms.iter().filter_map(form_tag).collect();
            tags.sort();
            tags.dedup();
            return Some(InferenceRecord {
                n,
                fit_tags: tags,
                shape: LoopShape::Nested(factors),
            });
        }
    }
    None
}

/// Attempts irregular-loop inference (paper §5, "Irregular loops"):
/// groups elements by a shared component value and finds a closed form
/// per group, concatenating the per-group loops.
fn infer_irregular(
    egraph: &mut CadGraph,
    list: Id,
    kind: AffineKind,
    vecs: &[[f64; 3]],
    child: Id,
    eps: f64,
) -> Option<InferenceRecord> {
    let n = vecs.len();
    'group_comp: for g in 0..3 {
        // Group indices by (snapped) component-g value, preserving first
        // appearance order.
        let mut groups: Vec<(f64, Vec<usize>)> = Vec::new();
        for (i, v) in vecs.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(val, _)| (val - v[g]).abs() <= 2.0 * eps)
            {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((v[g], vec![i])),
            }
        }
        if groups.len() < 2 || groups.len() == n || !groups.iter().any(|(_, g)| g.len() >= 2) {
            continue;
        }
        // Fit the remaining components within each group.
        let mut group_lists: Vec<Id> = Vec::new();
        let mut tags: Vec<String> = Vec::new();
        for (gval, idxs) in &groups {
            let mut exprs: Vec<Expr> = Vec::with_capacity(3);
            // `comp` indexes *each* vecs[i], not a single collection, so
            // the iterator rewrite clippy suggests does not apply.
            #[allow(clippy::needless_range_loop)]
            for comp in 0..3 {
                if comp == g {
                    exprs.push(Expr::num(sz_solver::snap(*gval, 2.0 * eps)));
                    continue;
                }
                let values: Vec<f64> = idxs.iter().map(|&i| vecs[i][comp]).collect();
                let Some(f) = fit_sequence(&values, eps) else {
                    continue 'group_comp;
                };
                if !f.is_constant() {
                    tags.push(f.kind_tag().to_owned());
                }
                exprs.push(if kind == AffineKind::Rotate {
                    f.to_rotation_expr(0).unwrap_or_else(|| f.to_expr(0))
                } else {
                    f.to_expr(0)
                });
            }
            let exprs = <[Expr; 3]>::try_from(exprs).expect("three components");
            let body = add_affine_exprs(egraph, kind, &exprs, child);
            let bound = add_num(egraph, idxs.len() as f64);
            group_lists.push(egraph.add(CadLang::MapIdx1([bound, body])));
        }
        // Concat the groups, right-nested.
        let mut acc = *group_lists.last().expect("at least two groups");
        for &gl in group_lists[..group_lists.len() - 1].iter().rev() {
            acc = egraph.add(CadLang::Concat([gl, acc]));
        }
        egraph.union(list, acc);
        tags.sort();
        tags.dedup();
        return Some(InferenceRecord {
            n,
            fit_tags: tags,
            shape: LoopShape::Irregular(groups.iter().map(|(_, g)| g.len()).collect()),
        });
    }
    None
}

/// Runs nested/irregular loop inference over every `Fold` list whose
/// elements share an outermost affine kind and a common inner subterm.
/// Only `Union`/`Inter` folds are considered (grouping reorders elements,
/// which is sound only for commutative operators).
pub fn infer_loops(egraph: &mut CadGraph, eps: f64) -> Vec<InferenceRecord> {
    infer_loops_with(egraph, eps, &PassControl::new()).0
}

/// [`infer_loops`] with cooperative cancellation: `ctl` is polled
/// between list sites. Returns the records produced plus whether the
/// pass was **truncated** — stopped with sites left unprocessed (the
/// e-graph keeps any structure already inserted); a pass that ran every
/// site reports `false` even if the stop condition became true only
/// afterwards.
pub fn infer_loops_with(
    egraph: &mut CadGraph,
    eps: f64,
    ctl: &PassControl,
) -> (Vec<InferenceRecord>, bool) {
    let sites = fold_sites(egraph);
    let mut seen: HashSet<Id> = HashSet::new();
    let mut records = Vec::new();
    for site in sites {
        if ctl.should_stop() {
            return (records, true);
        }
        if site.op == BoolOp::Diff {
            continue;
        }
        let list = egraph.find(site.list);
        if !seen.insert(list) {
            continue;
        }
        let Some(elements) = read_list(egraph, list) else {
            continue;
        };
        if elements.len() < 4 {
            continue; // smallest nontrivial grid is 2×2
        }
        for det in determinize_all(egraph, &elements) {
            if det.signature.is_empty() {
                continue;
            }
            // Loop inference reads only the outermost layer (paper §5);
            // the rest of each element must be a common class.
            let kind = det.signature[0];
            let children: Vec<Id> = det
                .chains
                .iter()
                .map(|c| egraph.find(c.layers[0].child))
                .collect();
            if children.windows(2).any(|w| w[0] != w[1]) {
                continue;
            }
            let child = children[0];
            let vecs: Vec<[f64; 3]> = det.chains.iter().map(|c| c.layers[0].vec).collect();

            if let Some(rec) = infer_regular(egraph, list, kind, &vecs, child, eps) {
                records.push(rec);
            } else if let Some(rec) = infer_irregular(egraph, list, kind, &vecs, child, eps) {
                records.push(rec);
            }
        }
    }
    (records, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lang_to_cad, CadAnalysis};
    use sz_egraph::{AstSize, Extractor, RecExpr, Runner};

    fn union_chain(items: &[String]) -> String {
        let mut acc = items.last().unwrap().clone();
        for it in items[..items.len() - 1].iter().rev() {
            acc = format!("(Union {it} {acc})");
        }
        acc
    }

    fn infer_pipeline(input: &str) -> (String, Vec<InferenceRecord>) {
        let expr: RecExpr<CadLang> = input.parse().unwrap();
        let runner = Runner::new(CadAnalysis)
            .with_expr(&expr)
            .with_iter_limit(40)
            .run(&crate::rules::rules());
        let mut eg = runner.egraph;
        let root = runner.roots[0];
        let records = infer_loops(&mut eg, 1e-3);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(root);
        (lang_to_cad(&best).unwrap().to_string(), records)
    }

    #[test]
    fn factorization_basics() {
        assert_eq!(
            factorizations(12, 2),
            vec![vec![2, 6], vec![3, 4], vec![4, 3], vec![6, 2]]
        );
        assert_eq!(factorizations(8, 3), vec![vec![2, 2, 2]]);
        assert!(factorizations(5, 2).is_empty());
        assert!(factorizations(4, 3).is_empty());
    }

    #[test]
    fn index_sets_match_paper() {
        // Paper §5: 2-factorization of 4 gives [[0;0;1;1]; [0;1;0;1]].
        assert_eq!(
            index_sets(&[2, 2]),
            vec![vec![0, 0, 1, 1], vec![0, 1, 0, 1]]
        );
        assert_eq!(
            index_sets(&[2, 3]),
            vec![vec![0, 0, 0, 1, 1, 1], vec![0, 1, 2, 0, 1, 2]]
        );
    }

    #[test]
    fn fig14_two_by_two_grid() {
        // Four cubes at (±12, ±12, 0) → Translate(24i−12, 24j−12, 0).
        let items: Vec<String> = [(12, 12), (12, -12), (-12, 12), (-12, -12)]
            .iter()
            .map(|(x, y)| format!("(Translate (Vec3 {x} {y} 0) Unit)"))
            .collect();
        let (best, records) = infer_pipeline(&union_chain(&items));
        assert!(best.contains("MapIdx2"), "got {best}");
        assert!(records
            .iter()
            .any(|r| r.shape == LoopShape::Nested(vec![2, 2])));
        // Both components linear in their own index.
        assert!(best.contains('i') && best.contains('j'), "got {best}");
    }

    #[test]
    fn fig17_dice_six_grid() {
        // 6 spheres in a 2×3 grid with a constant x and shared scale.
        let items: Vec<String> = (0..2)
            .flat_map(|i| {
                (0..3).map(move |j| {
                    format!(
                        "(Translate (Vec3 -5 {} {}) (Scale (Vec3 0.75 0.75 0.75) Sphere))",
                        2 - 4 * i,
                        2 - 2 * j
                    )
                })
            })
            .collect();
        let (best, records) = infer_pipeline(&union_chain(&items));
        assert!(best.contains("MapIdx2"), "got {best}");
        assert!(records
            .iter()
            .any(|r| r.shape == LoopShape::Nested(vec![2, 3])));
        // The shared 0.75 scale either stays on the spheres or gets
        // lifted above the whole fold by the reordering + lifting rules;
        // both expose the 2×3 grid.
        assert!(best.contains("Sphere"), "got {best}");
        assert!(
            best.contains("0.75") || best.contains("(Scale 0.75"),
            "got {best}"
        );
    }

    #[test]
    fn prime_lengths_have_no_regular_loop() {
        let items: Vec<String> = (0..5)
            .map(|i| format!("(Translate (Vec3 {} 7 0) Unit)", 3 * i))
            .collect();
        let (_, records) = infer_pipeline(&union_chain(&items));
        assert!(records
            .iter()
            .all(|r| !matches!(r.shape, LoopShape::Nested(_))));
    }

    #[test]
    fn irregular_grid_grouped() {
        // Two rows with different column counts: x∈{0}: y = 0,10,20;
        // x∈{50}: y = 0,10. Regular factorization of 5 fails.
        let mut items: Vec<String> = (0..3)
            .map(|j| format!("(Translate (Vec3 0 {} 0) Unit)", 10 * j))
            .collect();
        items.extend((0..2).map(|j| format!("(Translate (Vec3 50 {} 0) Unit)", 10 * j)));
        let (best, records) = infer_pipeline(&union_chain(&items));
        assert!(
            records
                .iter()
                .any(|r| r.shape == LoopShape::Irregular(vec![3, 2])),
            "records: {records:?}"
        );
        assert!(best.contains("Concat"), "got {best}");
        assert!(best.contains("MapIdx"), "got {best}");
    }

    #[test]
    fn unfactorable_stays_flat() {
        // Random-looking vectors with composite length.
        let vals = [3.1, -7.4, 12.9, 0.2];
        let items: Vec<String> = vals
            .iter()
            .map(|v| format!("(Translate (Vec3 {v} 1 2) Unit)"))
            .collect();
        let (best, records) = infer_pipeline(&union_chain(&items));
        assert!(records.is_empty());
        assert!(!best.contains("MapIdx"));
    }
}
