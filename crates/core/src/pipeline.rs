//! The Szalinski main loop (paper Fig. 5): equality saturation →
//! determinization → list manipulation → function/loop inference →
//! top-k extraction.

use std::fmt;
use std::time::{Duration, Instant};

use sz_cad::Cad;
use sz_egraph::{
    Id, KBestExtractor, RuleStat, Runner, Scheduler, Snapshot, SnapshotParseError, StopReason,
};

use crate::analysis::{CadAnalysis, CadGraph};
use crate::cost::{CadCost, CostKind};
use crate::funcinfer::{infer_functions, InferenceRecord};
use crate::lang::{cad_to_lang, lang_to_cad};
use crate::listmanip::list_manipulation;
use crate::loopinfer::infer_loops;
use crate::report::{fit_tags, has_structure, loop_tags, TableRow};
use crate::rules::{all_rules, rules};

/// Configuration ("fuel") for one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Noise tolerance for the arithmetic solvers (the paper's ε).
    pub eps: f64,
    /// How many programs to return (the paper uses k = 5).
    pub k: usize,
    /// Saturation iteration limit per main-loop round.
    pub iter_limit: usize,
    /// E-node limit for saturation.
    pub node_limit: usize,
    /// Wall-clock limit for saturation.
    pub time_limit: Duration,
    /// Rounds of the outer main loop (the paper found one sufficient).
    pub main_loop_fuel: usize,
    /// Include the explosive structural boolean rules
    /// (commutativity/associativity); off by default, measured in the
    /// ablation bench.
    pub structural_rules: bool,
    /// Throttle explosive rules with the e-graph's backoff scheduler
    /// ([`Scheduler::backoff`]); off by default so results match the
    /// paper's unthrottled saturation exactly.
    pub backoff: bool,
    /// Extraction cost function.
    pub cost: CostKind,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            eps: 1e-3,
            k: 5,
            iter_limit: 150,
            node_limit: 200_000,
            time_limit: Duration::from_secs(60),
            main_loop_fuel: 1,
            structural_rules: false,
            backoff: false,
            cost: CostKind::AstSize,
        }
    }
}

impl SynthConfig {
    /// Default configuration (ε = 10⁻³, k = 5, AST-size cost).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the solver tolerance.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets k for top-k extraction.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the cost function.
    pub fn with_cost(mut self, cost: CostKind) -> Self {
        self.cost = cost;
        self
    }

    /// Enables/disables the structural boolean rules.
    pub fn with_structural_rules(mut self, on: bool) -> Self {
        self.structural_rules = on;
        self
    }

    /// Sets the saturation iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    /// Sets the saturation node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the outer main-loop round count.
    pub fn with_main_loop_fuel(mut self, fuel: usize) -> Self {
        self.main_loop_fuel = fuel.max(1);
        self
    }

    /// Enables/disables backoff rule scheduling during saturation.
    pub fn with_backoff(mut self, on: bool) -> Self {
        self.backoff = on;
        self
    }

    /// A stable, human-readable fingerprint of every fuel/config field.
    ///
    /// Used (together with the input s-expression) as the key of the
    /// batch engine's content-addressed result cache, so it must change
    /// whenever any field that can affect synthesis output changes.
    /// Built as [`SynthConfig::saturation_fingerprint`] plus the
    /// extraction-only fields, so the two keys can never drift apart: a
    /// field added to the saturation half automatically reaches both.
    pub fn fingerprint(&self) -> String {
        format!(
            "{};k={};cost={:?}",
            self.saturation_fingerprint(),
            self.k,
            self.cost,
        )
    }

    /// The **saturation** half of [`SynthConfig::fingerprint`]: only the
    /// fields that shape the saturated e-graph (solver tolerance, fuel
    /// limits, rule set, scheduling). Extraction-only fields — `k` and
    /// `cost` — are deliberately excluded.
    ///
    /// This split is what makes e-graph snapshots reusable across
    /// extraction-only config changes: two configs with equal saturation
    /// fingerprints produce the same saturated graph for a given input,
    /// so a cost- or k-only change can resume from a stored snapshot
    /// (see [`resume_synthesize`]) instead of re-saturating, while any
    /// rule-set or fuel change invalidates it.
    pub fn saturation_fingerprint(&self) -> String {
        format!(
            "snapv{};eps={:e};iter={};nodes={};time_ms={};fuel={};structural={};backoff={}",
            sz_egraph::SNAPSHOT_FORMAT_VERSION,
            self.eps,
            self.iter_limit,
            self.node_limit,
            self.time_limit.as_millis(),
            self.main_loop_fuel,
            self.structural_rules,
            self.backoff,
        )
    }
}

/// Why [`try_synthesize`] rejected a run (the panic-free entry point
/// used by batch drivers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The input is not a flat CSG (contains loops, lists, index
    /// variables, or non-constant vectors), so the paper's pipeline
    /// contract does not apply.
    NotFlat,
    /// Extraction produced no program (cannot happen for well-formed
    /// inputs; reported instead of panicking for defense in depth).
    NoPrograms,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NotFlat => {
                write!(f, "input is not a flat CSG (see Cad::is_flat_csg)")
            }
            SynthError::NoPrograms => write!(f, "extraction produced no programs"),
        }
    }
}

impl std::error::Error for SynthError {}

/// One synthesized program with its extraction cost.
#[derive(Debug, Clone)]
pub struct SynthProgram {
    /// The extraction cost (see [`CostKind`]).
    pub cost: usize,
    /// The program.
    pub cad: Cad,
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The flat input.
    pub input: Cad,
    /// Up to k programs, cheapest first.
    pub top_k: Vec<SynthProgram>,
    /// What the inference passes did.
    pub records: Vec<InferenceRecord>,
    /// Total wall-clock time.
    pub time: Duration,
    /// Final e-graph size (nodes).
    pub egraph_nodes: usize,
    /// Final e-graph size (classes).
    pub egraph_classes: usize,
    /// Why saturation stopped (last round).
    pub stop_reason: Option<StopReason>,
    /// Total saturation iterations across rounds.
    pub iterations: usize,
    /// Per-rule e-matching profile, totalled across all saturation
    /// rounds: matches found, classes unioned, search/apply wall-clock
    /// time, and backoff bans (see [`RuleStat`]). Empty for runs that
    /// skipped saturation (snapshot resumes).
    pub rule_stats: Vec<RuleStat>,
}

impl Synthesis {
    /// The lowest-cost program.
    ///
    /// # Panics
    ///
    /// Panics if synthesis produced no programs (cannot happen for a
    /// well-formed input: the input itself is always extractable).
    /// Batch drivers should prefer [`Synthesis::try_best`].
    pub fn best(&self) -> &SynthProgram {
        &self.top_k[0]
    }

    /// The lowest-cost program, or `None` when extraction found nothing.
    pub fn try_best(&self) -> Option<&SynthProgram> {
        self.top_k.first()
    }

    /// The first structured program in the top-k, with its 1-based rank
    /// (the paper's `r` column).
    pub fn structured(&self) -> Option<(usize, &SynthProgram)> {
        self.top_k
            .iter()
            .enumerate()
            .find(|(_, p)| has_structure(&p.cad))
            .map(|(i, p)| (i + 1, p))
    }

    /// Builds the Table-1 row for this run.
    pub fn table_row(&self, name: &str) -> TableRow {
        let best = self.best();
        let (n_l, f, rank) = match self.structured() {
            Some((rank, p)) => {
                let loops = loop_tags(&p.cad).join("; ");
                let fits = fit_tags(&p.cad).join(",");
                (
                    if loops.is_empty() { "-".into() } else { loops },
                    if fits.is_empty() { "-".into() } else { fits },
                    Some(rank),
                )
            }
            None => ("-".to_owned(), "-".to_owned(), None),
        };
        TableRow {
            name: name.to_owned(),
            i_ns: self.input.num_nodes(),
            o_ns: best.cad.num_nodes(),
            i_p: self.input.num_prims(),
            o_p: best.cad.num_prims(),
            i_d: self.input.depth(),
            o_d: best.cad.depth(),
            n_l,
            f,
            time_s: self.time.as_secs_f64(),
            rank,
        }
    }
}

/// Runs the full Szalinski pipeline on a flat CSG.
///
/// # Examples
///
/// ```
/// use szalinski::{synthesize, SynthConfig};
/// use sz_cad::Cad;
///
/// // Figure 2's input: five cubes spaced 2 apart along x.
/// let items: Vec<Cad> = (1..=5)
///     .map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit))
///     .collect();
/// let flat = Cad::union_chain(items);
/// let result = synthesize(&flat, &SynthConfig::new());
/// let (rank, prog) = result.structured().expect("finds the loop");
/// assert_eq!(rank, 1);
/// assert!(prog.cad.to_string().contains("(Repeat Unit 5)"));
/// // The loop unrolls back to the input geometry.
/// assert_eq!(prog.cad.eval_to_flat().unwrap(), flat);
/// ```
pub fn synthesize(input: &Cad, config: &SynthConfig) -> Synthesis {
    let start = Instant::now();
    let sat = saturate(input, config);
    let top_k = extract_top_k(&sat.egraph, sat.root, config);
    Synthesis {
        input: input.clone(),
        top_k,
        records: sat.records,
        time: start.elapsed(),
        egraph_nodes: sat.egraph.total_number_of_nodes(),
        egraph_classes: sat.egraph.number_of_classes(),
        stop_reason: sat.stop_reason,
        iterations: sat.iterations,
        rule_stats: sat.rule_stats,
    }
}

/// The saturated e-graph coming out of the main loop, before extraction.
struct Saturated {
    egraph: CadGraph,
    root: Id,
    records: Vec<InferenceRecord>,
    stop_reason: Option<StopReason>,
    iterations: usize,
    rule_stats: Vec<RuleStat>,
}

/// Folds one round's per-rule totals into the running totals (matched by
/// name; every round runs the same rule set, so order is stable).
fn merge_rule_stats(totals: &mut Vec<RuleStat>, round: Vec<RuleStat>) {
    for stat in round {
        match totals.iter_mut().find(|t| t.name == stat.name) {
            Some(total) => total.absorb(&stat),
            None => totals.push(stat),
        }
    }
}

/// Runs the main loop (saturation → list manipulation → inference) and
/// returns the final, rebuilt e-graph.
fn saturate(input: &Cad, config: &SynthConfig) -> Saturated {
    let scheduler = if config.backoff {
        Scheduler::backoff()
    } else {
        Scheduler::Simple
    };
    let expr = cad_to_lang(input);
    let ruleset = if config.structural_rules {
        all_rules()
    } else {
        rules()
    };

    let mut egraph = CadGraph::new(CadAnalysis);
    let root = egraph.add_expr(&expr);
    egraph.rebuild();

    let mut records = Vec::new();
    let mut stop_reason = None;
    let mut iterations = 0;
    let mut rule_stats: Vec<RuleStat> = Vec::new();
    for _round in 0..config.main_loop_fuel {
        // apply_rws: equality saturation with the syntactic rules.
        let runner = Runner::new(CadAnalysis)
            .with_egraph(std::mem::replace(&mut egraph, CadGraph::new(CadAnalysis)))
            .with_iter_limit(config.iter_limit)
            .with_node_limit(config.node_limit)
            .with_time_limit(config.time_limit)
            .with_scheduler(scheduler.clone())
            .run(&ruleset);
        iterations += runner.iterations.len();
        stop_reason = runner.stop_reason.clone();
        merge_rule_stats(&mut rule_stats, runner.rule_totals());
        egraph = runner.egraph;

        // determ + list_manip: sorted list variants.
        list_manipulation(&mut egraph);
        egraph.rebuild();

        // solver_invoke: function inference, then nested loops.
        records.extend(infer_functions(&mut egraph, config.eps));
        egraph.rebuild();
        records.extend(infer_loops(&mut egraph, config.eps));
        egraph.rebuild();
    }
    Saturated {
        egraph,
        root,
        records,
        stop_reason,
        iterations,
        rule_stats,
    }
}

/// extract_prog: top-k under the configured cost function. Distinct
/// derivations can denote one tree (e.g. via the sorted-list fold
/// variant), so extract extra candidates and deduplicate.
fn extract_top_k(egraph: &CadGraph, root: Id, config: &SynthConfig) -> Vec<SynthProgram> {
    let kbest = KBestExtractor::new(egraph, CadCost::new(config.cost), config.k * 2);
    let mut top_k: Vec<SynthProgram> = Vec::new();
    for (cost, e) in kbest.find_best_k(root) {
        let Ok(cad) = lang_to_cad(&e) else { continue };
        if top_k.iter().any(|p| p.cad == cad) {
            continue;
        }
        top_k.push(SynthProgram { cost, cad });
        if top_k.len() >= config.k {
            break;
        }
    }
    top_k
}

/// Panic-free pipeline entry point for batch drivers.
///
/// Unlike [`synthesize`] this enforces the paper's input contract — the
/// input must be a *flat* CSG — and reports failures as values instead
/// of relying on downstream panics. All inputs and outputs are `Send`,
/// so runs can be fanned out across worker threads (see `sz-batch`).
///
/// # Examples
///
/// ```
/// use szalinski::{try_synthesize, SynthConfig, SynthError};
/// use sz_cad::Cad;
///
/// let flat = Cad::union_chain(
///     (1..=4).map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit)).collect(),
/// );
/// let result = try_synthesize(&flat, &SynthConfig::new()).unwrap();
/// assert!(!result.top_k.is_empty());
///
/// // A LambdaCAD term (not flat) is rejected, not mis-synthesized.
/// let looped: Cad = "(Repeat Unit 3)".parse().unwrap();
/// assert!(matches!(
///     try_synthesize(&looped, &SynthConfig::new()),
///     Err(SynthError::NotFlat)
/// ));
/// ```
pub fn try_synthesize(input: &Cad, config: &SynthConfig) -> Result<Synthesis, SynthError> {
    if !input.is_flat_csg() {
        return Err(SynthError::NotFlat);
    }
    let result = synthesize(input, config);
    if result.top_k.is_empty() {
        return Err(SynthError::NoPrograms);
    }
    Ok(result)
}

/// A persisted saturated e-graph plus the compatibility metadata needed
/// to resume extraction from it: the input's canonical s-expression and
/// the producing config's [`SynthConfig::saturation_fingerprint`].
///
/// Serialized as text: a two-line `szsynth v1` header (input, saturation
/// fingerprint) followed by an `sz_egraph` [`Snapshot`]. Because the
/// saturation fingerprint embeds the snapshot format version, bumping
/// [`sz_egraph::SNAPSHOT_FORMAT_VERSION`] invalidates every stored
/// snapshot key — stale snapshots can never poison a cache across
/// releases.
///
/// # Examples
///
/// ```
/// use szalinski::{synthesize_with_snapshot, resume_synthesize, SynthConfig};
/// use sz_cad::Cad;
///
/// let flat = Cad::union_chain(
///     (1..=4).map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit)).collect(),
/// );
/// let config = SynthConfig::new();
/// let (cold, snapshot) = synthesize_with_snapshot(&flat, &config);
/// // Round-trip through text (what the batch cache stores), then resume.
/// let snapshot = snapshot.to_string().parse().unwrap();
/// let resumed = resume_synthesize(&flat, &config, &snapshot).unwrap();
/// assert_eq!(resumed.iterations, 0); // no re-saturation
/// assert_eq!(
///     resumed.best().cad.to_string(),
///     cold.best().cad.to_string(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSnapshot {
    input: String,
    sat_fp: String,
    snapshot: Snapshot<crate::CadLang>,
}

impl SynthSnapshot {
    /// Pairs a raw e-graph snapshot with its compatibility metadata.
    /// (Normally produced by [`synthesize_with_snapshot`]; public for
    /// tests and tooling.)
    pub fn new(input: &Cad, config: &SynthConfig, snapshot: Snapshot<crate::CadLang>) -> Self {
        SynthSnapshot {
            input: input.to_string(),
            sat_fp: config.saturation_fingerprint(),
            snapshot,
        }
    }

    /// The input's canonical s-expression.
    pub fn input_sexp(&self) -> &str {
        &self.input
    }

    /// The producing config's saturation fingerprint.
    pub fn saturation_fingerprint(&self) -> &str {
        &self.sat_fp
    }

    /// Saturation iterations the producing run spent.
    pub fn iterations(&self) -> usize {
        self.snapshot.iterations()
    }

    /// The underlying e-graph snapshot.
    pub fn egraph_snapshot(&self) -> &Snapshot<crate::CadLang> {
        &self.snapshot
    }
}

impl fmt::Display for SynthSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "szsynth v1")?;
        writeln!(f, "input {}", self.input)?;
        writeln!(f, "satfp {}", self.sat_fp)?;
        write!(f, "{}", self.snapshot)
    }
}

impl std::str::FromStr for SynthSnapshot {
    type Err = SnapshotParseError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut lines = text.splitn(4, '\n');
        let header = lines
            .next()
            .ok_or_else(|| SnapshotParseError::new(1, "empty snapshot"))?;
        if header != "szsynth v1" {
            return Err(SnapshotParseError::new(
                1,
                format!("unsupported header `{header}` (this build reads `szsynth v1`)"),
            ));
        }
        let input = lines
            .next()
            .and_then(|l| l.strip_prefix("input "))
            .ok_or_else(|| SnapshotParseError::new(2, "expected `input <sexp>`"))?
            .to_owned();
        let sat_fp = lines
            .next()
            .and_then(|l| l.strip_prefix("satfp "))
            .ok_or_else(|| SnapshotParseError::new(3, "expected `satfp <fingerprint>`"))?
            .to_owned();
        let rest = lines
            .next()
            .ok_or_else(|| SnapshotParseError::new(4, "missing e-graph snapshot"))?;
        let snapshot = rest
            .parse::<Snapshot<crate::CadLang>>()
            .map_err(|e| e.offset_lines(3))?;
        Ok(SynthSnapshot {
            input,
            sat_fp,
            snapshot,
        })
    }
}

/// Why [`resume_synthesize`] refused to reuse a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot was taken for a different input.
    InputMismatch,
    /// The snapshot's saturation fingerprint does not match the config
    /// (rule set, fuel, or tolerance changed — re-saturation required).
    ConfigMismatch,
    /// The snapshot records no root class (corrupt or hand-edited).
    NoRoot,
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::InputMismatch => write!(f, "snapshot was taken for a different input"),
            ResumeError::ConfigMismatch => write!(
                f,
                "snapshot's saturation fingerprint does not match the config"
            ),
            ResumeError::NoRoot => write!(f, "snapshot records no root class"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// [`synthesize`], additionally capturing a [`SynthSnapshot`] of the
/// saturated e-graph so later runs can resume extraction from it.
pub fn synthesize_with_snapshot(input: &Cad, config: &SynthConfig) -> (Synthesis, SynthSnapshot) {
    let start = Instant::now();
    let sat = saturate(input, config);
    let snapshot = Snapshot::of_egraph(&sat.egraph, &[sat.root])
        .expect("the main loop always rebuilds before returning")
        .with_iterations(sat.iterations);
    let top_k = extract_top_k(&sat.egraph, sat.root, config);
    (
        Synthesis {
            input: input.clone(),
            top_k,
            records: sat.records,
            time: start.elapsed(),
            egraph_nodes: sat.egraph.total_number_of_nodes(),
            egraph_classes: sat.egraph.number_of_classes(),
            stop_reason: sat.stop_reason,
            iterations: sat.iterations,
            rule_stats: sat.rule_stats,
        },
        SynthSnapshot::new(input, config, snapshot),
    )
}

/// [`try_synthesize`], additionally capturing a [`SynthSnapshot`].
pub fn try_synthesize_with_snapshot(
    input: &Cad,
    config: &SynthConfig,
) -> Result<(Synthesis, SynthSnapshot), SynthError> {
    if !input.is_flat_csg() {
        return Err(SynthError::NotFlat);
    }
    let (result, snapshot) = synthesize_with_snapshot(input, config);
    if result.top_k.is_empty() {
        return Err(SynthError::NoPrograms);
    }
    Ok((result, snapshot))
}

/// Resumes a synthesis run from a snapshot: restores the saturated
/// e-graph and re-runs only extraction, skipping saturation entirely
/// (the returned [`Synthesis::iterations`] is 0).
///
/// The config may differ from the producing run in **extraction-only**
/// fields (`k`, `cost`); the saturated graph is the same either way, so
/// the result is identical to a cold run under `config` — see
/// `tests/incremental_differential.rs` for the proof over the paper's
/// corpus.
///
/// # Errors
///
/// [`ResumeError`] if the snapshot belongs to a different input or to a
/// config with a different [`SynthConfig::saturation_fingerprint`].
pub fn resume_synthesize(
    input: &Cad,
    config: &SynthConfig,
    snapshot: &SynthSnapshot,
) -> Result<Synthesis, ResumeError> {
    if snapshot.input != input.to_string() {
        return Err(ResumeError::InputMismatch);
    }
    if snapshot.sat_fp != config.saturation_fingerprint() {
        return Err(ResumeError::ConfigMismatch);
    }
    let &[root] = snapshot.snapshot.roots() else {
        return Err(ResumeError::NoRoot);
    };
    let start = Instant::now();
    let egraph = snapshot.snapshot.restore(CadAnalysis);
    let top_k = extract_top_k(&egraph, root, config);
    Ok(Synthesis {
        input: input.clone(),
        top_k,
        records: Vec::new(),
        time: start.elapsed(),
        egraph_nodes: egraph.total_number_of_nodes(),
        egraph_classes: egraph.number_of_classes(),
        stop_reason: None,
        iterations: 0,
        rule_stats: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_of_cubes(n: usize, spacing: f64) -> Cad {
        Cad::union_chain(
            (1..=n)
                .map(|i| Cad::translate(spacing * i as f64, 0.0, 0.0, Cad::Unit))
                .collect(),
        )
    }

    #[test]
    fn fig2_end_to_end() {
        let flat = row_of_cubes(5, 2.0);
        let result = synthesize(&flat, &SynthConfig::new());
        let (_, prog) = result.structured().unwrap();
        let s = prog.cad.to_string();
        assert!(s.contains("Mapi"), "got {s}");
        assert!(s.contains("(Repeat Unit 5)"), "got {s}");
        assert!(prog.cad.num_nodes() < flat.num_nodes());
        // Equivalence: evaluating the program reproduces the input.
        assert_eq!(prog.cad.eval_to_flat().unwrap(), flat);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let flat = row_of_cubes(4, 3.0);
        let result = synthesize(&flat, &SynthConfig::new().with_k(5));
        assert!(result.top_k.len() <= 5);
        assert!(!result.top_k.is_empty());
        for w in result.top_k.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn no_structure_returns_input_like_program() {
        let flat = Cad::diff(
            Cad::scale(20.0, 20.0, 3.0, Cad::Unit),
            Cad::translate(1.0, 2.0, 0.0, Cad::Sphere),
        );
        let result = synthesize(&flat, &SynthConfig::new());
        assert!(result.structured().is_none());
        assert_eq!(result.best().cad.num_nodes(), flat.num_nodes());
    }

    #[test]
    fn table_row_reports_reduction() {
        let flat = row_of_cubes(8, 2.0);
        let result = synthesize(&flat, &SynthConfig::new());
        let row = result.table_row("row-of-8");
        assert!(row.o_ns < row.i_ns);
        assert_eq!(row.i_p, 8);
        assert_eq!(row.o_p, 1);
        assert!(
            row.n_l.contains("n1,8") || row.n_l.contains("n2"),
            "{:?}",
            row.n_l
        );
        assert_eq!(row.f, "d1");
        assert!(row.rank.is_some());
    }

    #[test]
    fn reward_loops_changes_extraction() {
        // Two cubes: too few for AstSize to prefer the loop, but
        // RewardLoops surfaces it (the wardrobe@ effect).
        let flat = row_of_cubes(2, 2.0);
        let default = synthesize(&flat, &SynthConfig::new());
        let reward = synthesize(&flat, &SynthConfig::new().with_cost(CostKind::RewardLoops));
        assert!(reward.structured().is_some());
        let default_best_structured = default
            .structured()
            .map(|(rank, _)| rank)
            .unwrap_or(usize::MAX);
        let reward_best_structured = reward.structured().map(|(rank, _)| rank).unwrap();
        assert!(reward_best_structured <= default_best_structured);
        assert_eq!(reward_best_structured, 1);
    }

    #[test]
    fn pipeline_types_are_send() {
        // The batch engine moves jobs and results across threads; keep
        // the whole pipeline surface Send (and the config Sync).
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Cad>();
        assert_send::<SynthConfig>();
        assert_send::<Synthesis>();
        assert_send::<SynthError>();
        assert_sync::<SynthConfig>();
    }

    #[test]
    fn try_synthesize_rejects_non_flat_input() {
        let looped: Cad = "(Fold Union Empty (Repeat Unit 3))".parse().unwrap();
        assert_eq!(
            try_synthesize(&looped, &SynthConfig::new()).unwrap_err(),
            SynthError::NotFlat
        );
    }

    #[test]
    fn try_synthesize_matches_synthesize_on_flat_input() {
        let flat = row_of_cubes(5, 2.0);
        let config = SynthConfig::new();
        let a = synthesize(&flat, &config);
        let b = try_synthesize(&flat, &config).unwrap();
        let progs = |s: &Synthesis| -> Vec<(usize, String)> {
            s.top_k
                .iter()
                .map(|p| (p.cost, p.cad.to_string()))
                .collect()
        };
        assert_eq!(progs(&a), progs(&b));
    }

    #[test]
    fn backoff_config_still_finds_structure() {
        // Backoff must not cost the pipeline its result on the worked
        // figure; with structural rules on it throttles the explosion.
        let flat = row_of_cubes(5, 2.0);
        let config = SynthConfig::new()
            .with_structural_rules(true)
            .with_backoff(true)
            .with_iter_limit(25)
            .with_node_limit(60_000);
        let result = synthesize(&flat, &config);
        let (_, prog) = result.structured().expect("still finds the loop");
        assert!(prog.cad.to_string().contains("(Repeat Unit 5)"));
    }

    #[test]
    fn fingerprint_changes_with_fields() {
        let base = SynthConfig::new();
        assert_eq!(base.fingerprint(), SynthConfig::new().fingerprint());
        let variants = [
            base.clone().with_eps(1e-2),
            base.clone().with_k(7),
            base.clone().with_iter_limit(1),
            base.clone().with_node_limit(1),
            base.clone().with_main_loop_fuel(3),
            base.clone().with_structural_rules(true),
            base.clone().with_backoff(true),
            base.clone().with_cost(CostKind::RewardLoops),
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{:?}", v);
        }
    }

    #[test]
    fn saturation_fingerprint_splits_extraction_fields() {
        let base = SynthConfig::new();
        // Extraction-only changes keep the saturation fingerprint.
        assert_eq!(
            base.clone().with_k(9).saturation_fingerprint(),
            base.saturation_fingerprint()
        );
        assert_eq!(
            base.clone()
                .with_cost(CostKind::RewardLoops)
                .saturation_fingerprint(),
            base.saturation_fingerprint()
        );
        // ...but still change the full fingerprint.
        assert_ne!(base.clone().with_k(9).fingerprint(), base.fingerprint());
        // Saturation-affecting changes invalidate it.
        for v in [
            base.clone().with_eps(1e-2),
            base.clone().with_iter_limit(1),
            base.clone().with_node_limit(1),
            base.clone().with_main_loop_fuel(3),
            base.clone().with_structural_rules(true),
            base.clone().with_backoff(true),
        ] {
            assert_ne!(
                v.saturation_fingerprint(),
                base.saturation_fingerprint(),
                "{v:?}"
            );
        }
    }

    #[test]
    fn synthesis_reports_rule_stats() {
        let flat = row_of_cubes(5, 2.0);
        let result = synthesize(&flat, &SynthConfig::new());
        assert_eq!(result.rule_stats.len(), crate::rules::rules().len());
        let folds = result
            .rule_stats
            .iter()
            .find(|s| s.name == "fold-intro-union")
            .unwrap();
        assert!(folds.matches > 0, "union chain must feed the fold rules");
        assert!(folds.applied > 0);
        let total_matches: usize = result.rule_stats.iter().map(|s| s.matches).sum();
        assert!(total_matches > 0);
        // Resumed runs skip saturation and carry no per-rule profile.
        let (_, snapshot) = synthesize_with_snapshot(&flat, &SynthConfig::new());
        let resumed = resume_synthesize(&flat, &SynthConfig::new(), &snapshot).unwrap();
        assert!(resumed.rule_stats.is_empty());
    }

    #[test]
    fn resume_reproduces_cold_run_byte_for_byte() {
        let flat = row_of_cubes(5, 2.0);
        let config = SynthConfig::new();
        let (cold, snapshot) = synthesize_with_snapshot(&flat, &config);
        let resumed = resume_synthesize(&flat, &config, &snapshot).unwrap();
        assert_eq!(resumed.iterations, 0);
        assert!(cold.iterations > 0);
        assert_eq!(resumed.egraph_nodes, cold.egraph_nodes);
        assert_eq!(resumed.egraph_classes, cold.egraph_classes);
        let progs = |s: &Synthesis| -> Vec<(usize, String)> {
            s.top_k
                .iter()
                .map(|p| (p.cost, p.cad.to_string()))
                .collect()
        };
        assert_eq!(progs(&resumed), progs(&cold));
    }

    #[test]
    fn resume_supports_cost_only_config_change() {
        // Snapshot under AstSize, resume under RewardLoops: must equal a
        // cold RewardLoops run (the saturated graph is cost-agnostic).
        let flat = row_of_cubes(2, 2.0);
        let (_, snapshot) = synthesize_with_snapshot(&flat, &SynthConfig::new());
        let reward = SynthConfig::new().with_cost(CostKind::RewardLoops);
        let resumed = resume_synthesize(&flat, &reward, &snapshot).unwrap();
        let cold = synthesize(&flat, &reward);
        assert_eq!(resumed.best().cad.to_string(), cold.best().cad.to_string());
        assert_eq!(resumed.structured().map(|(r, _)| r), Some(1));
    }

    #[test]
    fn resume_rejects_mismatches() {
        let flat = row_of_cubes(3, 2.0);
        let config = SynthConfig::new();
        let (_, snapshot) = synthesize_with_snapshot(&flat, &config);
        assert_eq!(
            resume_synthesize(&row_of_cubes(4, 2.0), &config, &snapshot).unwrap_err(),
            ResumeError::InputMismatch
        );
        // A rule-set change is a saturation change: snapshot refused.
        assert_eq!(
            resume_synthesize(
                &flat,
                &config.clone().with_structural_rules(true),
                &snapshot
            )
            .unwrap_err(),
            ResumeError::ConfigMismatch
        );
    }

    #[test]
    fn synth_snapshot_text_roundtrip_and_errors() {
        let flat = row_of_cubes(3, 2.0);
        let (_, snapshot) = synthesize_with_snapshot(&flat, &SynthConfig::new());
        let text = snapshot.to_string();
        let back: SynthSnapshot = text.parse().unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.to_string(), text, "reserialization is byte-stable");
        assert!(back.iterations() > 0);

        // Header and truncation corruption yield errors, never panics.
        assert!("szsynth v9\n".parse::<SynthSnapshot>().is_err());
        let err = text
            .replacen("szsnap v1", "szsnap v99", 1)
            .parse::<SynthSnapshot>()
            .unwrap_err();
        assert_eq!(err.line(), 4, "inner errors are offset past the header");
        for cut in [0, 10, text.len() / 2, text.len() - 10] {
            assert!(text[..cut].parse::<SynthSnapshot>().is_err());
        }
    }

    #[test]
    fn gear_like_model_under_diff() {
        // Diff(base, union-of-teeth): the fold lives under a Diff, as in
        // the real gear.
        let teeth: Vec<Cad> = (1..=6)
            .map(|i| {
                Cad::rotate(
                    0.0,
                    0.0,
                    60.0 * i as f64,
                    Cad::translate(12.0, 0.0, 0.0, Cad::External("tooth".into())),
                )
            })
            .collect();
        let flat = Cad::diff(
            Cad::scale(10.0, 10.0, 2.0, Cad::Cylinder),
            Cad::union_chain(teeth),
        );
        let result = synthesize(&flat, &SynthConfig::new());
        let (rank, prog) = result.structured().unwrap();
        let s = prog.cad.to_string();
        assert!(rank <= 5);
        assert!(
            s.contains("(Repeat (Translate 12 0 0 (External tooth)) 6)")
                || s.contains("(Repeat (External tooth) 6)"),
            "got {s}"
        );
        assert!(s.contains("(/ (* 360 (+ i 1)) 6)"), "got {s}");
        // The base stays outside the loop, under the Diff.
        assert!(s.starts_with("(Diff (Scale 10 10 2 Cylinder)"), "got {s}");
    }
}
