//! The Szalinski pipeline types (paper Fig. 5): configuration, results,
//! snapshots, and errors, plus the deprecated free-function entry points
//! now implemented as thin wrappers over the session-based
//! [`Synthesizer`](crate::Synthesizer) (see [`crate::session`] for the
//! main loop itself).

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sz_cad::Cad;
use sz_egraph::{
    escape_token, unescape_token, Id, KBestExtractor, ParetoExtractor, RuleStat, Snapshot,
    SnapshotParseError, StopReason,
};
use sz_trace::Telemetry;

use crate::analysis::{CadAnalysis, CadGraph};
use crate::cost::{AstSizeCost, CostKind, CostModel, ModelCost};
use crate::funcinfer::InferenceRecord;
use crate::lang::lang_to_cad;
use crate::report::{fit_tags, has_structure, loop_tags, TableRow};

/// Configuration ("fuel") for one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Noise tolerance for the arithmetic solvers (the paper's ε).
    pub eps: f64,
    /// How many programs to return (the paper uses k = 5).
    pub k: usize,
    /// Saturation iteration limit per main-loop round.
    pub iter_limit: usize,
    /// E-node limit for saturation.
    pub node_limit: usize,
    /// Wall-clock limit for saturation.
    pub time_limit: Duration,
    /// Rounds of the outer main loop (the paper found one sufficient).
    pub main_loop_fuel: usize,
    /// Include the explosive structural boolean rules
    /// (commutativity/associativity); off by default, measured in the
    /// ablation bench.
    pub structural_rules: bool,
    /// Throttle explosive rules with the e-graph's backoff scheduler
    /// ([`Scheduler::backoff`]); off by default so results match the
    /// paper's unthrottled saturation exactly.
    pub backoff: bool,
    /// Extraction cost model (an **extraction-only** field: it feeds
    /// [`SynthConfig::fingerprint`] via [`CostModel::fingerprint`] but
    /// never the saturation fingerprint, so swapping models reuses
    /// snapshots).
    pub cost_model: Arc<dyn CostModel>,
    /// When set, extraction additionally computes the deterministic
    /// Pareto front under these two cost models (surfaced in
    /// [`Synthesis::pareto`]). Extraction-only, like `cost_model`.
    pub pareto: Option<[Arc<dyn CostModel>; 2]>,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            eps: 1e-3,
            k: 5,
            iter_limit: 150,
            node_limit: 200_000,
            time_limit: Duration::from_secs(60),
            main_loop_fuel: 1,
            structural_rules: false,
            backoff: false,
            cost_model: Arc::new(AstSizeCost),
            pareto: None,
        }
    }
}

impl SynthConfig {
    /// Default configuration (ε = 10⁻³, k = 5, AST-size cost).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the solver tolerance.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets k for top-k extraction.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the cost function from the legacy two-variant selector —
    /// a thin compatibility wrapper over
    /// [`SynthConfig::with_cost_model`].
    pub fn with_cost(self, cost: CostKind) -> Self {
        self.with_cost_model(cost.model())
    }

    /// Sets the extraction cost model (see [`CostModel`] for the
    /// contract; built-ins and combinators live in [`crate::cost`]).
    ///
    /// # Panics
    ///
    /// Debug builds panic if the model's fingerprint violates the
    /// charset contract (see [`crate::cost::validate_fingerprint`]) —
    /// a delimiter inside a fingerprint could alias two different
    /// configs onto one batch cache key.
    pub fn with_cost_model(mut self, model: Arc<dyn CostModel>) -> Self {
        debug_assert_fingerprint(model.as_ref());
        self.cost_model = model;
        self
    }

    /// Requests Pareto-front extraction under two cost models alongside
    /// the ranked top-k (the front lands in [`Synthesis::pareto`]). The
    /// first model must be strictly monotone; the second may be a
    /// plateauing measure such as [`crate::cost::GeomCount`].
    ///
    /// # Panics
    ///
    /// Debug builds panic on fingerprint-contract violations (as for
    /// [`SynthConfig::with_cost_model`]) and when the first model is not
    /// strictly monotone — the same requirement `parse_cost_spec`
    /// rejects for the CLI, since a plateauing first objective breaks
    /// the Pareto extractor's cycle-pruning argument.
    pub fn with_pareto(mut self, a: Arc<dyn CostModel>, b: Arc<dyn CostModel>) -> Self {
        debug_assert_fingerprint(a.as_ref());
        debug_assert_fingerprint(b.as_ref());
        debug_assert!(
            a.strictly_monotone(),
            "the first pareto objective must be strictly monotone \
             (put plateauing measures like GeomCount second)"
        );
        self.pareto = Some([a, b]);
        self
    }

    /// Enables/disables the structural boolean rules.
    pub fn with_structural_rules(mut self, on: bool) -> Self {
        self.structural_rules = on;
        self
    }

    /// Sets the saturation iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    /// Sets the saturation node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the outer main-loop round count.
    pub fn with_main_loop_fuel(mut self, fuel: usize) -> Self {
        self.main_loop_fuel = fuel.max(1);
        self
    }

    /// Enables/disables backoff rule scheduling during saturation.
    pub fn with_backoff(mut self, on: bool) -> Self {
        self.backoff = on;
        self
    }

    /// A stable, human-readable fingerprint of every fuel/config field.
    ///
    /// Used (together with the input s-expression) as the key of the
    /// batch engine's content-addressed result cache, so it must change
    /// whenever any field that can affect synthesis output changes.
    /// Built as [`SynthConfig::saturation_fingerprint`] plus the
    /// extraction-only fields, so the two keys can never drift apart: a
    /// field added to the saturation half automatically reaches both.
    pub fn fingerprint(&self) -> String {
        format!(
            "{};k={};cost={}",
            self.saturation_fingerprint(),
            self.k,
            self.cost_fingerprint(),
        )
    }

    /// The extraction **cost** half of the fingerprint: the configured
    /// [`CostModel::fingerprint`], plus the Pareto objectives when
    /// [`SynthConfig::with_pareto`] is set. Recorded per job in the
    /// batch JSONL report, and the piece of [`SynthConfig::fingerprint`]
    /// that changes — while the saturation fingerprint does **not** —
    /// when only the cost model is swapped (which is why cost-only
    /// changes still hit the snapshot tier).
    pub fn cost_fingerprint(&self) -> String {
        match &self.pareto {
            None => self.cost_model.fingerprint(),
            Some([a, b]) => format!(
                "{}+pareto({},{})",
                self.cost_model.fingerprint(),
                a.fingerprint(),
                b.fingerprint()
            ),
        }
    }

    /// The **saturation** half of [`SynthConfig::fingerprint`]: only the
    /// fields that shape the saturated e-graph (solver tolerance, fuel
    /// limits, rule set, scheduling). Extraction-only fields — `k` and
    /// `cost` — are deliberately excluded.
    ///
    /// This split is what makes e-graph snapshots reusable across
    /// extraction-only config changes: two configs with equal saturation
    /// fingerprints produce the same saturated graph for a given input,
    /// so a cost- or k-only change can resume from a stored snapshot
    /// (see [`resume_synthesize`]) instead of re-saturating, while any
    /// rule-set or fuel change invalidates it.
    pub fn saturation_fingerprint(&self) -> String {
        format!(
            "snapv{};eps={:e};iter={};nodes={};time_ms={};fuel={};structural={};backoff={}",
            sz_egraph::SNAPSHOT_FORMAT_VERSION,
            self.eps,
            self.iter_limit,
            self.node_limit,
            self.time_limit.as_millis(),
            self.main_loop_fuel,
            self.structural_rules,
            self.backoff,
        )
    }

    /// The saturation fingerprint **modulo fuel limits**: every field of
    /// [`SynthConfig::saturation_fingerprint`] except `iter`/`nodes`/
    /// `time_ms`.
    ///
    /// Two configs with equal core fingerprints explore the *same
    /// saturation trajectory* — they differ only in where along it they
    /// stop. That is what makes **partial-saturation resume** sound: a
    /// snapshot taken under lower fuel limits sits on the trajectory of
    /// any higher-fuel run with the same core, so
    /// [`Synthesizer::run`](crate::Synthesizer::run) can continue
    /// saturating from it instead of starting cold (see
    /// [`SynthSnapshot::supports_partial_resume`]).
    pub fn saturation_core_fingerprint(&self) -> String {
        format!(
            "snapv{};eps={:e};fuel={};structural={};backoff={}",
            sz_egraph::SNAPSHOT_FORMAT_VERSION,
            self.eps,
            self.main_loop_fuel,
            self.structural_rules,
            self.backoff,
        )
    }
}

/// Debug-build enforcement of the [`CostModel::fingerprint`] charset
/// contract at the config boundary (the earliest point a user model
/// enters the pipeline).
fn debug_assert_fingerprint(model: &dyn CostModel) {
    if cfg!(debug_assertions) {
        if let Err(why) = crate::cost::validate_fingerprint(&model.fingerprint()) {
            panic!("invalid CostModel fingerprint: {why}");
        }
    }
}

/// Why [`try_synthesize`] rejected a run (the panic-free entry point
/// used by batch drivers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The input is not a flat CSG (contains loops, lists, index
    /// variables, or non-constant vectors), so the paper's pipeline
    /// contract does not apply.
    NotFlat,
    /// Extraction produced no program (cannot happen for well-formed
    /// inputs; reported instead of panicking for defense in depth).
    NoPrograms,
    /// The rule set failed static analysis at compile time: the lint
    /// report carries at least one deny-level finding (e.g. `SZL001`, an
    /// RHS variable the LHS never binds — applying such a rule panics
    /// mid-saturation). Raised by [`Synthesizer::try_new`]; the built-in
    /// rule sets are lint-clean, so [`Synthesizer::new`] never sees it.
    ///
    /// [`Synthesizer::try_new`]: crate::Synthesizer::try_new
    /// [`Synthesizer::new`]: crate::Synthesizer::new
    RuleLint(Arc<sz_lint::Report>),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::NotFlat => {
                write!(f, "input is not a flat CSG (see Cad::is_flat_csg)")
            }
            SynthError::NoPrograms => write!(f, "extraction produced no programs"),
            SynthError::RuleLint(report) => {
                write!(
                    f,
                    "rule set failed static analysis ({} deny finding{}):",
                    report.deny_count(),
                    if report.deny_count() == 1 { "" } else { "s" },
                )?;
                for d in report.with_severity(sz_lint::Severity::Deny) {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// One synthesized program with its extraction cost.
#[derive(Debug, Clone)]
pub struct SynthProgram {
    /// The primary component of the configured [`CostModel`]'s cost.
    pub cost: usize,
    /// The program.
    pub cad: Cad,
}

/// One point on a Pareto front: a program with its two objective costs.
#[derive(Debug, Clone)]
pub struct ParetoProgram {
    /// `[objective_a, objective_b]` primary costs under the two models
    /// of [`SynthConfig::with_pareto`].
    pub costs: [u64; 2],
    /// The program.
    pub cad: Cad,
}

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The flat input.
    pub input: Cad,
    /// Up to k programs, cheapest first.
    pub top_k: Vec<SynthProgram>,
    /// What the inference passes did.
    pub records: Vec<InferenceRecord>,
    /// Total wall-clock time.
    pub time: Duration,
    /// Final e-graph size (nodes).
    pub egraph_nodes: usize,
    /// Final e-graph size (classes).
    pub egraph_classes: usize,
    /// Why saturation stopped (last round).
    pub stop_reason: Option<StopReason>,
    /// Total saturation iterations across rounds.
    pub iterations: usize,
    /// Per-rule e-matching profile, totalled across all saturation
    /// rounds: matches found, classes unioned, search/apply wall-clock
    /// time, and backoff bans (see [`RuleStat`]). Empty for runs that
    /// skipped saturation entirely (extraction-only snapshot resumes).
    /// Partial-saturation resumes **merge** the producing legs' persisted
    /// counts with this leg's, so matches/applied/bans are lifetime
    /// totals; wall-clock times cover this leg only (prior legs persist
    /// counts, not times).
    pub rule_stats: Vec<RuleStat>,
    /// How the run executed: cold, extraction-only resume, or
    /// partial-saturation resume (see [`RunMode`](crate::RunMode)).
    pub mode: crate::RunMode,
    /// The snapshot captured by this run, when
    /// [`RunOptions::capture_snapshot`](crate::RunOptions::capture_snapshot)
    /// was requested and the run was not cancelled.
    pub snapshot: Option<SynthSnapshot>,
    /// The deterministic Pareto front under the two cost models of
    /// [`SynthConfig::with_pareto`] /
    /// [`RunOptions::with_pareto`](crate::RunOptions::with_pareto):
    /// mutually non-dominating programs, ascending on the first
    /// objective. `None` when no Pareto extraction was requested.
    pub pareto: Option<Vec<ParetoProgram>>,
    /// The telemetry bundle this run recorded into (the one passed via
    /// [`RunOptions::with_telemetry`](crate::RunOptions::with_telemetry),
    /// or a disabled bundle otherwise). Handles are cheap clones of the
    /// caller's: spans/metrics land in the shared sink either way — this
    /// accessor just keeps them reachable from the result.
    pub telemetry: Telemetry,
}

impl Synthesis {
    /// The lowest-cost program.
    ///
    /// # Panics
    ///
    /// Panics if synthesis produced no programs (cannot happen for a
    /// well-formed input: the input itself is always extractable).
    /// Batch drivers should prefer [`Synthesis::try_best`].
    pub fn best(&self) -> &SynthProgram {
        &self.top_k[0]
    }

    /// The lowest-cost program, or `None` when extraction found nothing.
    pub fn try_best(&self) -> Option<&SynthProgram> {
        self.top_k.first()
    }

    /// Whether this run's saturation was cut short by a deadline or
    /// cancel token ([`StopReason::Cancelled`]). The programs are still
    /// valid — just extracted from a less-saturated graph — but the
    /// result is wall-clock-dependent and must not enter deterministic
    /// caches.
    pub fn cancelled(&self) -> bool {
        self.stop_reason == Some(StopReason::Cancelled)
    }

    /// The first structured program in the top-k, with its 1-based rank
    /// (the paper's `r` column).
    pub fn structured(&self) -> Option<(usize, &SynthProgram)> {
        self.top_k
            .iter()
            .enumerate()
            .find(|(_, p)| has_structure(&p.cad))
            .map(|(i, p)| (i + 1, p))
    }

    /// Builds the Table-1 row for this run.
    pub fn table_row(&self, name: &str) -> TableRow {
        let best = self.best();
        let (n_l, f, rank) = match self.structured() {
            Some((rank, p)) => {
                let loops = loop_tags(&p.cad).join("; ");
                let fits = fit_tags(&p.cad).join(",");
                (
                    if loops.is_empty() { "-".into() } else { loops },
                    if fits.is_empty() { "-".into() } else { fits },
                    Some(rank),
                )
            }
            None => ("-".to_owned(), "-".to_owned(), None),
        };
        TableRow {
            name: name.to_owned(),
            i_ns: self.input.num_nodes(),
            o_ns: best.cad.num_nodes(),
            i_p: self.input.num_prims(),
            o_p: best.cad.num_prims(),
            i_d: self.input.depth(),
            o_d: best.cad.depth(),
            n_l,
            f,
            time_s: self.time.as_secs_f64(),
            rank,
        }
    }
}

/// Runs the full Szalinski pipeline on a flat CSG.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use szalinski::{synthesize, SynthConfig};
/// use sz_cad::Cad;
///
/// // Figure 2's input: five cubes spaced 2 apart along x.
/// let items: Vec<Cad> = (1..=5)
///     .map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit))
///     .collect();
/// let flat = Cad::union_chain(items);
/// let result = synthesize(&flat, &SynthConfig::new());
/// let (rank, prog) = result.structured().expect("finds the loop");
/// assert_eq!(rank, 1);
/// assert!(prog.cad.to_string().contains("(Repeat Unit 5)"));
/// // The loop unrolls back to the input geometry.
/// assert_eq!(prog.cad.eval_to_flat().unwrap(), flat);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "build a `Synthesizer` session and call `run` — it compiles the rule set once \
            and adds snapshots, deadlines, cancellation, and progress hooks"
)]
pub fn synthesize(input: &Cad, config: &SynthConfig) -> Synthesis {
    // Permissive on purpose: this function never enforced the flat-CSG
    // contract or non-empty extraction, and the wrapper must not start
    // panicking where the old code returned a result (see
    // `Synthesizer::run` for the checked entry point).
    crate::Synthesizer::new(config.clone()).run_unchecked(input, crate::RunOptions::new())
}

/// extract_prog: top-k under the configured cost function. Distinct
/// derivations can denote one tree (e.g. via the sorted-list fold
/// variant), so extract extra candidates and deduplicate.
pub(crate) fn extract_top_k(
    egraph: &CadGraph,
    root: Id,
    config: &SynthConfig,
) -> Vec<SynthProgram> {
    let kbest = KBestExtractor::new(
        egraph,
        ModelCost(Arc::clone(&config.cost_model)),
        config.k * 2,
    );
    let mut top_k: Vec<SynthProgram> = Vec::new();
    for (cost, e) in kbest.find_best_k(root) {
        let Ok(cad) = lang_to_cad(&e) else { continue };
        if top_k.iter().any(|p| p.cad == cad) {
            continue;
        }
        top_k.push(SynthProgram {
            cost: cost.primary() as usize,
            cad,
        });
        if top_k.len() >= config.k {
            break;
        }
    }
    top_k
}

/// When the config requests it, extracts the deterministic Pareto front
/// under the two configured cost models (dominated and non-CAD
/// derivations dropped; deduplicated by program).
pub(crate) fn extract_pareto(
    egraph: &CadGraph,
    root: Id,
    config: &SynthConfig,
) -> Option<Vec<ParetoProgram>> {
    let [a, b] = config.pareto.as_ref()?;
    let extractor =
        ParetoExtractor::new(egraph, ModelCost(Arc::clone(a)), ModelCost(Arc::clone(b)));
    let mut front: Vec<ParetoProgram> = Vec::new();
    for (ca, cb, e) in extractor.find_front(root) {
        let Ok(cad) = lang_to_cad(&e) else { continue };
        if front.iter().any(|p| p.cad == cad) {
            continue;
        }
        front.push(ParetoProgram {
            costs: [ca.primary(), cb.primary()],
            cad,
        });
    }
    Some(front)
}

/// Panic-free pipeline entry point for batch drivers.
///
/// Unlike [`synthesize`] this enforces the paper's input contract — the
/// input must be a *flat* CSG — and reports failures as values instead
/// of relying on downstream panics. All inputs and outputs are `Send`,
/// so runs can be fanned out across worker threads (see `sz-batch`).
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use szalinski::{try_synthesize, SynthConfig, SynthError};
/// use sz_cad::Cad;
///
/// let flat = Cad::union_chain(
///     (1..=4).map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit)).collect(),
/// );
/// let result = try_synthesize(&flat, &SynthConfig::new()).unwrap();
/// assert!(!result.top_k.is_empty());
///
/// // A LambdaCAD term (not flat) is rejected, not mis-synthesized.
/// let looped: Cad = "(Repeat Unit 3)".parse().unwrap();
/// assert!(matches!(
///     try_synthesize(&looped, &SynthConfig::new()),
///     Err(SynthError::NotFlat)
/// ));
/// ```
#[deprecated(
    since = "0.2.0",
    note = "build a `Synthesizer` session and call `run` — same contract, plus snapshots, \
            deadlines, cancellation, and progress hooks"
)]
pub fn try_synthesize(input: &Cad, config: &SynthConfig) -> Result<Synthesis, SynthError> {
    crate::Synthesizer::new(config.clone()).run(input, crate::RunOptions::new())
}

/// The **saturation-phase** section of a [`SynthSnapshot`]: the runner
/// state (e-graph, scheduler, iteration count) captured right after
/// equality saturation of the final main-loop round — *before* list
/// manipulation and solver inference touch the graph.
///
/// This is the state [`Synthesizer::run`](crate::Synthesizer::run)
/// continues from on a **partial-saturation resume**: a config whose
/// [`SynthConfig::saturation_core_fingerprint`] matches and whose fuel
/// limits are at least the producing run's can restore this section via
/// [`sz_egraph::Runner::resume_from`] and keep saturating, then re-run
/// the (deterministic) inference passes — landing on the exact state a
/// cold run at the higher fuel would reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatPhase {
    core_fp: String,
    iter_limit: usize,
    node_limit: usize,
    time_ms: u128,
    rule_stats: Vec<RuleStat>,
    snapshot: Snapshot<crate::CadLang>,
}

impl SatPhase {
    /// Pairs a post-saturation runner snapshot with the producing
    /// config's core fingerprint and fuel limits.
    pub fn new(config: &SynthConfig, snapshot: Snapshot<crate::CadLang>) -> Self {
        SatPhase {
            core_fp: config.saturation_core_fingerprint(),
            iter_limit: config.iter_limit,
            node_limit: config.node_limit,
            time_ms: config.time_limit.as_millis(),
            rule_stats: Vec::new(),
            snapshot,
        }
    }

    /// Attaches the producing run's lifetime per-rule profile, so a
    /// partial resume can merge its own leg's counters on top instead of
    /// reporting only the last leg. Only the deterministic **counts**
    /// (matches, applied, bans) are kept — wall-clock times are zeroed,
    /// matching the serialized form (`rulestat` lines persist counts, so
    /// a round-trip through text must be identity).
    pub fn with_rule_stats(mut self, stats: Vec<RuleStat>) -> Self {
        self.rule_stats = stats
            .into_iter()
            .map(|s| RuleStat {
                name: s.name,
                matches: s.matches,
                applied: s.applied,
                times_banned: s.times_banned,
                search_time: Duration::ZERO,
                apply_time: Duration::ZERO,
            })
            .collect();
        self
    }

    /// The producing config's [`SynthConfig::saturation_core_fingerprint`].
    pub fn core_fingerprint(&self) -> &str {
        &self.core_fp
    }

    /// Saturation iterations actually spent by the producing run.
    pub fn iterations(&self) -> usize {
        self.snapshot.iterations()
    }

    /// The producing run's lifetime per-rule profile (counts only; wall
    /// times are zero — see [`SatPhase::with_rule_stats`]). Empty for
    /// snapshots written before the `szsynth v3` bump.
    pub fn rule_stats(&self) -> &[RuleStat] {
        &self.rule_stats
    }

    /// The post-saturation runner snapshot.
    pub fn snapshot(&self) -> &Snapshot<crate::CadLang> {
        &self.snapshot
    }
}

/// A persisted saturated e-graph plus the compatibility metadata needed
/// to resume from it: the input's canonical s-expression, the producing
/// config's [`SynthConfig::saturation_fingerprint`], the final
/// (post-inference) e-graph for **extraction-only** resumes, and — when
/// captured by [`Synthesizer::run`](crate::Synthesizer::run) — a
/// [`SatPhase`] section for **partial-saturation** resumes.
///
/// Serialized as text (`szsynth v3`): three header lines (input,
/// saturation fingerprint, sat-phase descriptor), the sat-phase's
/// per-rule `rulestat` count lines, the optional saturation-phase
/// [`Snapshot`], then the final [`Snapshot`]. Legacy `szsynth v1` text
/// (no sat-phase section) and `szsynth v2` text (no `rulestat` lines)
/// still parse, so caches populated before the bumps keep serving
/// resumes.
/// Because the saturation fingerprint embeds the snapshot format
/// version, bumping [`sz_egraph::SNAPSHOT_FORMAT_VERSION`] invalidates
/// every stored snapshot key — stale snapshots can never poison a cache
/// across releases.
///
/// # Examples
///
/// ```
/// use szalinski::{SynthConfig, Synthesizer, RunOptions};
/// use sz_cad::Cad;
///
/// let flat = Cad::union_chain(
///     (1..=4).map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit)).collect(),
/// );
/// let session = Synthesizer::new(SynthConfig::new());
/// let cold = session
///     .run(&flat, RunOptions::new().capture_snapshot(true))
///     .unwrap();
/// // Round-trip through text (what the batch cache stores), then resume.
/// let snapshot = cold.snapshot.clone().unwrap().to_string().parse().unwrap();
/// let resumed = session
///     .run(&flat, RunOptions::new().with_snapshot(snapshot))
///     .unwrap();
/// assert_eq!(resumed.iterations, 0); // no re-saturation
/// assert_eq!(
///     resumed.best().cad.to_string(),
///     cold.best().cad.to_string(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthSnapshot {
    input: String,
    sat_fp: String,
    snapshot: Snapshot<crate::CadLang>,
    sat_phase: Option<SatPhase>,
}

impl SynthSnapshot {
    /// Pairs a raw e-graph snapshot with its compatibility metadata.
    /// (Normally produced by [`Synthesizer::run`](crate::Synthesizer::run)
    /// with `capture_snapshot`; public for tests and tooling.)
    pub fn new(input: &Cad, config: &SynthConfig, snapshot: Snapshot<crate::CadLang>) -> Self {
        SynthSnapshot {
            input: input.to_string(),
            sat_fp: config.saturation_fingerprint(),
            snapshot,
            sat_phase: None,
        }
    }

    /// Attaches the saturation-phase section enabling partial-saturation
    /// resume.
    pub fn with_sat_phase(mut self, sat_phase: SatPhase) -> Self {
        self.sat_phase = Some(sat_phase);
        self
    }

    /// The input's canonical s-expression.
    pub fn input_sexp(&self) -> &str {
        &self.input
    }

    /// The producing config's saturation fingerprint.
    pub fn saturation_fingerprint(&self) -> &str {
        &self.sat_fp
    }

    /// Saturation iterations the producing run spent.
    pub fn iterations(&self) -> usize {
        self.snapshot.iterations()
    }

    /// The final (post-inference) e-graph snapshot used by
    /// extraction-only resumes.
    pub fn egraph_snapshot(&self) -> &Snapshot<crate::CadLang> {
        &self.snapshot
    }

    /// The saturation-phase section, if the producing run captured one.
    pub fn sat_phase(&self) -> Option<&SatPhase> {
        self.sat_phase.as_ref()
    }

    /// Drops the saturation-phase section, roughly halving the
    /// serialized size. For stores that only ever serve extraction-only
    /// resumes (e.g. the batch snapshot tier, which keys on exact
    /// saturation fingerprints), the section is dead weight against the
    /// byte budget.
    pub fn without_sat_phase(mut self) -> Self {
        self.sat_phase = None;
        self
    }

    /// Whether `config` can **continue saturating** from this snapshot's
    /// saturation-phase section: the core fingerprints must match, the
    /// producing fuel limits must not exceed `config`'s (every state
    /// reachable under the tighter limits lies on the looser run's
    /// trajectory), and the main loop must be single-round (multi-round
    /// configs interleave inference with saturation, so a mid-pipeline
    /// snapshot is not a prefix of a longer run).
    pub fn supports_partial_resume(&self, config: &SynthConfig) -> bool {
        let Some(phase) = &self.sat_phase else {
            return false;
        };
        config.main_loop_fuel == 1 && phase.header().fits(config)
    }

    /// Reads the compatibility metadata out of serialized snapshot text
    /// **without parsing the embedded e-graphs** — just the handful of
    /// header lines. Stores indexing many snapshots (the batch tier's
    /// core-key index) use this to decide *which* snapshot to offer a
    /// config before paying for a full parse. `None` on malformed text;
    /// the probe is advisory — a full [`SynthSnapshot`] parse (and
    /// [`SynthSnapshot::supports_partial_resume`]) still gates any
    /// actual resume, so a lying header degrades to a cold run rather
    /// than an unsound one.
    pub fn probe_header(text: &str) -> Option<SnapshotHeader> {
        let mut lines = LineCursor { text, pos: 0 };
        let version: u32 = match lines.next()? {
            "szsynth v3" => 3,
            "szsynth v2" => 2,
            "szsynth v1" => 1,
            _ => return None,
        };
        let input = lines.next()?.strip_prefix("input ")?.to_owned();
        let sat_fp = lines.next()?.strip_prefix("satfp ")?.to_owned();
        let sat_phase = if version >= 2 {
            let rest = lines.next()?.strip_prefix("satphase ")?;
            if rest == "none" {
                None
            } else {
                let mut toks = rest.split_whitespace();
                Some(SatPhaseHeader {
                    core_fp: toks.next()?.to_owned(),
                    iter_limit: toks.next()?.parse().ok()?,
                    node_limit: toks.next()?.parse().ok()?,
                    time_ms: toks.next()?.parse().ok()?,
                })
            }
        } else {
            None
        };
        Some(SnapshotHeader {
            input,
            sat_fp,
            sat_phase,
        })
    }
}

/// The compatibility metadata of one serialized [`SynthSnapshot`],
/// recovered by [`SynthSnapshot::probe_header`] from the text's header
/// lines alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// The input's canonical s-expression (`input` line).
    pub input: String,
    /// The producing config's [`SynthConfig::saturation_fingerprint`]
    /// (`satfp` line).
    pub sat_fp: String,
    /// The saturation-phase descriptor, when the snapshot kept its
    /// continuable section (`satphase` line; `None` for `satphase none`
    /// and legacy v1 snapshots).
    pub sat_phase: Option<SatPhaseHeader>,
}

/// The fuel-and-identity descriptor of a [`SatPhase`] section: the
/// producing config's core fingerprint and fuel limits, as persisted on
/// the `satphase` header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatPhaseHeader {
    /// The producing config's [`SynthConfig::saturation_core_fingerprint`].
    pub core_fp: String,
    /// The producing run's saturation iteration limit.
    pub iter_limit: usize,
    /// The producing run's e-node limit.
    pub node_limit: usize,
    /// The producing run's saturation time limit, in milliseconds.
    pub time_ms: u128,
}

impl SatPhaseHeader {
    /// Whether a run under `config` could continue saturating from the
    /// described section: core fingerprints match and the producing
    /// fuel limits do not exceed `config`'s (every state reachable
    /// under the tighter limits lies on the looser run's trajectory).
    /// Callers must additionally require `config.main_loop_fuel == 1`
    /// — [`SynthSnapshot::supports_partial_resume`] is the full check.
    pub fn fits(&self, config: &SynthConfig) -> bool {
        self.core_fp == config.saturation_core_fingerprint()
            && self.iter_limit <= config.iter_limit
            && self.node_limit <= config.node_limit
            && self.time_ms <= config.time_limit.as_millis()
    }
}

impl SatPhase {
    /// This section's [`SatPhaseHeader`] (what
    /// [`SynthSnapshot::probe_header`] recovers from text).
    pub fn header(&self) -> SatPhaseHeader {
        SatPhaseHeader {
            core_fp: self.core_fp.clone(),
            iter_limit: self.iter_limit,
            node_limit: self.node_limit,
            time_ms: self.time_ms,
        }
    }
}

impl fmt::Display for SynthSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "szsynth v3")?;
        writeln!(f, "input {}", self.input)?;
        writeln!(f, "satfp {}", self.sat_fp)?;
        match &self.sat_phase {
            None => writeln!(f, "satphase none")?,
            Some(phase) => {
                // The embedded snapshot's and rule-stat table's lengths
                // are declared up front (fingerprints contain no
                // whitespace, so the descriptor stays one
                // whitespace-separated line).
                let text = phase.snapshot.to_string();
                writeln!(
                    f,
                    "satphase {} {} {} {} {} {}",
                    phase.core_fp,
                    phase.iter_limit,
                    phase.node_limit,
                    phase.time_ms,
                    text.lines().count(),
                    phase.rule_stats.len(),
                )?;
                // Deterministic counts only — wall times would make the
                // serialization wall-clock-dependent (and the golden
                // fixtures unpinnable).
                for stat in &phase.rule_stats {
                    writeln!(
                        f,
                        "rulestat {} {} {} {}",
                        escape_token(&stat.name),
                        stat.matches,
                        stat.applied,
                        stat.times_banned,
                    )?;
                }
                write!(f, "{text}")?;
            }
        }
        write!(f, "{}", self.snapshot)
    }
}

/// A line cursor that tracks its byte offset, so embedded sections can
/// be handed to the `Snapshot` parser as zero-copy slices of the input.
struct LineCursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> LineCursor<'a> {
    /// The next line (without its terminator), or `None` at end of input.
    fn next(&mut self) -> Option<&'a str> {
        if self.pos >= self.text.len() {
            return None;
        }
        let rest = &self.text[self.pos..];
        match rest.find('\n') {
            Some(i) => {
                self.pos += i + 1;
                Some(rest[..i].strip_suffix('\r').unwrap_or(&rest[..i]))
            }
            None => {
                self.pos = self.text.len();
                Some(rest)
            }
        }
    }

    /// Everything not yet consumed.
    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }
}

impl std::str::FromStr for SynthSnapshot {
    type Err = SnapshotParseError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut lines = LineCursor { text, pos: 0 };
        let header = lines
            .next()
            .ok_or_else(|| SnapshotParseError::new(1, "empty snapshot"))?;
        let version: u32 = match header {
            "szsynth v3" => 3,
            // Legacy two-section snapshots (no `rulestat` lines).
            "szsynth v2" => 2,
            // Legacy single-section snapshots (no sat-phase line).
            "szsynth v1" => 1,
            _ => {
                return Err(SnapshotParseError::new(
                    1,
                    format!("unsupported header `{header}` (this build reads `szsynth v3`)"),
                ))
            }
        };
        let input = lines
            .next()
            .and_then(|l| l.strip_prefix("input "))
            .ok_or_else(|| SnapshotParseError::new(2, "expected `input <sexp>`"))?
            .to_owned();
        let sat_fp = lines
            .next()
            .and_then(|l| l.strip_prefix("satfp "))
            .ok_or_else(|| SnapshotParseError::new(3, "expected `satfp <fingerprint>`"))?
            .to_owned();
        let mut consumed = 3usize;
        let sat_phase = if version >= 2 {
            let line = lines
                .next()
                .ok_or_else(|| SnapshotParseError::new(4, "expected `satphase ...`"))?;
            consumed += 1;
            let rest = line.strip_prefix("satphase ").ok_or_else(|| {
                SnapshotParseError::new(4, format!("expected `satphase ...`, got `{line}`"))
            })?;
            if rest == "none" {
                None
            } else {
                // v2 descriptors have five fields; v3 adds the
                // `rulestat`-line count.
                let toks: Vec<&str> = rest.split_whitespace().collect();
                let (core_fp, iter_tok, nodes_tok, time_tok, len_tok, nstats_tok) =
                    match toks.as_slice() {
                        [a, b, c, d, e] if version == 2 => (*a, *b, *c, *d, *e, None),
                        [a, b, c, d, e, f] if version >= 3 => (*a, *b, *c, *d, *e, Some(*f)),
                        _ => {
                            return Err(SnapshotParseError::new(
                                4,
                                format!(
                                    "expected `satphase <core-fp> <iter> <nodes> <time_ms> \
                                     <lines>{}`, got `{line}`",
                                    if version >= 3 { " <rulestats>" } else { "" }
                                ),
                            ));
                        }
                    };
                let field = |tok: &str, what: &str| -> Result<usize, SnapshotParseError> {
                    tok.parse().map_err(|_| {
                        SnapshotParseError::new(4, format!("expected {what}, got `{tok}`"))
                    })
                };
                let iter_limit = field(iter_tok, "an iteration limit")?;
                let node_limit = field(nodes_tok, "a node limit")?;
                let time_ms = field(time_tok, "a time limit in ms")? as u128;
                let len = field(len_tok, "a line count")?;
                let nstats = match nstats_tok {
                    None => 0,
                    Some(tok) => field(tok, "a rulestat count")?,
                };
                let mut rule_stats = Vec::with_capacity(nstats);
                for _ in 0..nstats {
                    let line = lines.next().ok_or_else(|| {
                        SnapshotParseError::new(consumed + 1, "truncated rulestat table")
                    })?;
                    consumed += 1;
                    let stat_err = |what: String| SnapshotParseError::new(consumed, what);
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    let ["rulestat", name, matches, applied, banned] = toks.as_slice() else {
                        return Err(stat_err(format!(
                            "expected `rulestat <name> <matches> <applied> <bans>`, got `{line}`"
                        )));
                    };
                    let count = |tok: &str| -> Result<usize, SnapshotParseError> {
                        tok.parse()
                            .map_err(|_| stat_err(format!("expected a count, got `{tok}`")))
                    };
                    rule_stats.push(RuleStat {
                        name: unescape_token(name).map_err(&stat_err)?,
                        matches: count(matches)?,
                        applied: count(applied)?,
                        times_banned: count(banned)?,
                        search_time: Duration::ZERO,
                        apply_time: Duration::ZERO,
                    });
                }
                // Skip exactly `len` lines (running out is truncation)
                // and parse the skipped region as a zero-copy slice.
                let section_start = lines.pos;
                for _ in 0..len {
                    lines.next().ok_or_else(|| {
                        SnapshotParseError::new(consumed + 1, "truncated saturation-phase snapshot")
                    })?;
                    consumed += 1;
                }
                let snapshot = text[section_start..lines.pos]
                    .parse::<Snapshot<crate::CadLang>>()
                    .map_err(|e| e.offset_lines(consumed - len))?;
                Some(SatPhase {
                    core_fp: core_fp.to_owned(),
                    iter_limit,
                    node_limit,
                    time_ms,
                    rule_stats,
                    snapshot,
                })
            }
        } else {
            None
        };
        let rest = lines.rest();
        if rest.is_empty() {
            return Err(SnapshotParseError::new(
                consumed + 1,
                "missing e-graph snapshot",
            ));
        }
        let snapshot = rest
            .parse::<Snapshot<crate::CadLang>>()
            .map_err(|e| e.offset_lines(consumed))?;
        Ok(SynthSnapshot {
            input,
            sat_fp,
            snapshot,
            sat_phase,
        })
    }
}

/// Why [`resume_synthesize`] refused to reuse a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot was taken for a different input.
    InputMismatch,
    /// The snapshot's saturation fingerprint does not match the config
    /// (rule set, fuel, or tolerance changed — re-saturation required).
    ConfigMismatch,
    /// The snapshot records no root class (corrupt or hand-edited).
    NoRoot,
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::InputMismatch => write!(f, "snapshot was taken for a different input"),
            ResumeError::ConfigMismatch => write!(
                f,
                "snapshot's saturation fingerprint does not match the config"
            ),
            ResumeError::NoRoot => write!(f, "snapshot records no root class"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// [`synthesize`], additionally capturing a [`SynthSnapshot`] of the
/// saturated e-graph so later runs can resume extraction from it.
#[deprecated(
    since = "0.2.0",
    note = "call `Synthesizer::run` with `RunOptions::new().capture_snapshot(true)`; the \
            snapshot is returned in `Synthesis::snapshot`"
)]
pub fn synthesize_with_snapshot(input: &Cad, config: &SynthConfig) -> (Synthesis, SynthSnapshot) {
    // Permissive like `synthesize`: no flat-CSG or non-empty check.
    let mut result = crate::Synthesizer::new(config.clone())
        .run_unchecked(input, crate::RunOptions::new().capture_snapshot(true));
    let snapshot = result
        .snapshot
        .take()
        .expect("uncancelled runs always capture when asked");
    (result, snapshot)
}

/// [`try_synthesize`], additionally capturing a [`SynthSnapshot`].
#[deprecated(
    since = "0.2.0",
    note = "call `Synthesizer::run` with `RunOptions::new().capture_snapshot(true)`; the \
            snapshot is returned in `Synthesis::snapshot`"
)]
pub fn try_synthesize_with_snapshot(
    input: &Cad,
    config: &SynthConfig,
) -> Result<(Synthesis, SynthSnapshot), SynthError> {
    let mut result = crate::Synthesizer::new(config.clone())
        .run(input, crate::RunOptions::new().capture_snapshot(true))?;
    let snapshot = result
        .snapshot
        .take()
        .expect("uncancelled runs always capture when asked");
    Ok((result, snapshot))
}

/// Resumes a synthesis run from a snapshot: restores the saturated
/// e-graph and re-runs only extraction, skipping saturation entirely
/// (the returned [`Synthesis::iterations`] is 0).
///
/// The config may differ from the producing run in **extraction-only**
/// fields (`k`, `cost`); the saturated graph is the same either way, so
/// the result is identical to a cold run under `config` — see
/// `tests/incremental_differential.rs` for the proof over the paper's
/// corpus.
///
/// # Errors
///
/// [`ResumeError`] if the snapshot belongs to a different input or to a
/// config with a different [`SynthConfig::saturation_fingerprint`].
#[deprecated(
    since = "0.2.0",
    note = "call `Synthesizer::run` with `RunOptions::new().with_snapshot(...)` — it \
            dispatches extraction-only and partial-saturation resumes automatically \
            (check `Synthesis::mode`)"
)]
pub fn resume_synthesize(
    input: &Cad,
    config: &SynthConfig,
    snapshot: &SynthSnapshot,
) -> Result<Synthesis, ResumeError> {
    if snapshot.input != input.to_string() {
        return Err(ResumeError::InputMismatch);
    }
    if snapshot.sat_fp != config.saturation_fingerprint() {
        return Err(ResumeError::ConfigMismatch);
    }
    let &[root] = snapshot.snapshot.roots() else {
        return Err(ResumeError::NoRoot);
    };
    let start = Instant::now();
    let egraph = snapshot.snapshot.restore(CadAnalysis);
    let top_k = extract_top_k(&egraph, root, config);
    let pareto = extract_pareto(&egraph, root, config);
    Ok(Synthesis {
        input: input.clone(),
        top_k,
        records: Vec::new(),
        time: start.elapsed(),
        egraph_nodes: egraph.total_number_of_nodes(),
        egraph_classes: egraph.number_of_classes(),
        stop_reason: None,
        iterations: 0,
        rule_stats: Vec::new(),
        mode: crate::RunMode::ResumedExtraction,
        snapshot: None,
        pareto,
        telemetry: Telemetry::disabled(),
    })
}

#[cfg(test)]
mod tests {
    // The deprecated wrappers stay under test on purpose: they must keep
    // behaving exactly like the session API they delegate to.
    #![allow(deprecated)]

    use super::*;

    fn row_of_cubes(n: usize, spacing: f64) -> Cad {
        Cad::union_chain(
            (1..=n)
                .map(|i| Cad::translate(spacing * i as f64, 0.0, 0.0, Cad::Unit))
                .collect(),
        )
    }

    #[test]
    fn fig2_end_to_end() {
        let flat = row_of_cubes(5, 2.0);
        let result = synthesize(&flat, &SynthConfig::new());
        let (_, prog) = result.structured().unwrap();
        let s = prog.cad.to_string();
        assert!(s.contains("Mapi"), "got {s}");
        assert!(s.contains("(Repeat Unit 5)"), "got {s}");
        assert!(prog.cad.num_nodes() < flat.num_nodes());
        // Equivalence: evaluating the program reproduces the input.
        assert_eq!(prog.cad.eval_to_flat().unwrap(), flat);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let flat = row_of_cubes(4, 3.0);
        let result = synthesize(&flat, &SynthConfig::new().with_k(5));
        assert!(result.top_k.len() <= 5);
        assert!(!result.top_k.is_empty());
        for w in result.top_k.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
    }

    #[test]
    fn no_structure_returns_input_like_program() {
        let flat = Cad::diff(
            Cad::scale(20.0, 20.0, 3.0, Cad::Unit),
            Cad::translate(1.0, 2.0, 0.0, Cad::Sphere),
        );
        let result = synthesize(&flat, &SynthConfig::new());
        assert!(result.structured().is_none());
        assert_eq!(result.best().cad.num_nodes(), flat.num_nodes());
    }

    #[test]
    fn table_row_reports_reduction() {
        let flat = row_of_cubes(8, 2.0);
        let result = synthesize(&flat, &SynthConfig::new());
        let row = result.table_row("row-of-8");
        assert!(row.o_ns < row.i_ns);
        assert_eq!(row.i_p, 8);
        assert_eq!(row.o_p, 1);
        assert!(
            row.n_l.contains("n1,8") || row.n_l.contains("n2"),
            "{:?}",
            row.n_l
        );
        assert_eq!(row.f, "d1");
        assert!(row.rank.is_some());
    }

    #[test]
    fn reward_loops_changes_extraction() {
        // Two cubes: too few for AstSize to prefer the loop, but
        // RewardLoops surfaces it (the wardrobe@ effect).
        let flat = row_of_cubes(2, 2.0);
        let default = synthesize(&flat, &SynthConfig::new());
        let reward = synthesize(&flat, &SynthConfig::new().with_cost(CostKind::RewardLoops));
        assert!(reward.structured().is_some());
        let default_best_structured = default
            .structured()
            .map(|(rank, _)| rank)
            .unwrap_or(usize::MAX);
        let reward_best_structured = reward.structured().map(|(rank, _)| rank).unwrap();
        assert!(reward_best_structured <= default_best_structured);
        assert_eq!(reward_best_structured, 1);
    }

    #[test]
    fn pipeline_types_are_send() {
        // The batch engine moves jobs and results across threads; keep
        // the whole pipeline surface Send (and the config Sync).
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Cad>();
        assert_send::<SynthConfig>();
        assert_send::<Synthesis>();
        assert_send::<SynthError>();
        assert_sync::<SynthConfig>();
    }

    #[test]
    fn synthesize_stays_permissive_on_non_flat_input() {
        // The deprecated wrapper never enforced the flat-CSG contract:
        // an already-structured program must keep producing a result
        // (not a panic) exactly as it did before the session API.
        let looped: Cad = "(Repeat Unit 3)".parse().unwrap();
        let result = synthesize(&looped, &SynthConfig::new().with_iter_limit(5));
        assert_eq!(result.input, looped);
    }

    #[test]
    fn try_synthesize_rejects_non_flat_input() {
        let looped: Cad = "(Fold Union Empty (Repeat Unit 3))".parse().unwrap();
        assert_eq!(
            try_synthesize(&looped, &SynthConfig::new()).unwrap_err(),
            SynthError::NotFlat
        );
    }

    #[test]
    fn try_synthesize_matches_synthesize_on_flat_input() {
        let flat = row_of_cubes(5, 2.0);
        let config = SynthConfig::new();
        let a = synthesize(&flat, &config);
        let b = try_synthesize(&flat, &config).unwrap();
        let progs = |s: &Synthesis| -> Vec<(usize, String)> {
            s.top_k
                .iter()
                .map(|p| (p.cost, p.cad.to_string()))
                .collect()
        };
        assert_eq!(progs(&a), progs(&b));
    }

    #[test]
    fn backoff_config_still_finds_structure() {
        // Backoff must not cost the pipeline its result on the worked
        // figure; with structural rules on it throttles the explosion.
        let flat = row_of_cubes(5, 2.0);
        let config = SynthConfig::new()
            .with_structural_rules(true)
            .with_backoff(true)
            .with_iter_limit(25)
            .with_node_limit(60_000);
        let result = synthesize(&flat, &config);
        let (_, prog) = result.structured().expect("still finds the loop");
        assert!(prog.cad.to_string().contains("(Repeat Unit 5)"));
    }

    #[test]
    fn fingerprint_changes_with_fields() {
        let base = SynthConfig::new();
        assert_eq!(base.fingerprint(), SynthConfig::new().fingerprint());
        let variants = [
            base.clone().with_eps(1e-2),
            base.clone().with_k(7),
            base.clone().with_iter_limit(1),
            base.clone().with_node_limit(1),
            base.clone().with_main_loop_fuel(3),
            base.clone().with_structural_rules(true),
            base.clone().with_backoff(true),
            base.clone().with_cost(CostKind::RewardLoops),
        ];
        for v in &variants {
            assert_ne!(v.fingerprint(), base.fingerprint(), "{:?}", v);
        }
    }

    #[test]
    fn saturation_fingerprint_splits_extraction_fields() {
        let base = SynthConfig::new();
        // Extraction-only changes keep the saturation fingerprint.
        assert_eq!(
            base.clone().with_k(9).saturation_fingerprint(),
            base.saturation_fingerprint()
        );
        assert_eq!(
            base.clone()
                .with_cost(CostKind::RewardLoops)
                .saturation_fingerprint(),
            base.saturation_fingerprint()
        );
        // ...but still change the full fingerprint.
        assert_ne!(base.clone().with_k(9).fingerprint(), base.fingerprint());
        // Saturation-affecting changes invalidate it.
        for v in [
            base.clone().with_eps(1e-2),
            base.clone().with_iter_limit(1),
            base.clone().with_node_limit(1),
            base.clone().with_main_loop_fuel(3),
            base.clone().with_structural_rules(true),
            base.clone().with_backoff(true),
        ] {
            assert_ne!(
                v.saturation_fingerprint(),
                base.saturation_fingerprint(),
                "{v:?}"
            );
        }
    }

    #[test]
    fn synthesis_reports_rule_stats() {
        let flat = row_of_cubes(5, 2.0);
        let result = synthesize(&flat, &SynthConfig::new());
        assert_eq!(result.rule_stats.len(), crate::rules::rules().len());
        let folds = result
            .rule_stats
            .iter()
            .find(|s| s.name == "fold-intro-union")
            .unwrap();
        assert!(folds.matches > 0, "union chain must feed the fold rules");
        assert!(folds.applied > 0);
        let total_matches: usize = result.rule_stats.iter().map(|s| s.matches).sum();
        assert!(total_matches > 0);
        // Resumed runs skip saturation and carry no per-rule profile.
        let (_, snapshot) = synthesize_with_snapshot(&flat, &SynthConfig::new());
        let resumed = resume_synthesize(&flat, &SynthConfig::new(), &snapshot).unwrap();
        assert!(resumed.rule_stats.is_empty());
    }

    #[test]
    fn resume_reproduces_cold_run_byte_for_byte() {
        let flat = row_of_cubes(5, 2.0);
        let config = SynthConfig::new();
        let (cold, snapshot) = synthesize_with_snapshot(&flat, &config);
        let resumed = resume_synthesize(&flat, &config, &snapshot).unwrap();
        assert_eq!(resumed.iterations, 0);
        assert!(cold.iterations > 0);
        assert_eq!(resumed.egraph_nodes, cold.egraph_nodes);
        assert_eq!(resumed.egraph_classes, cold.egraph_classes);
        let progs = |s: &Synthesis| -> Vec<(usize, String)> {
            s.top_k
                .iter()
                .map(|p| (p.cost, p.cad.to_string()))
                .collect()
        };
        assert_eq!(progs(&resumed), progs(&cold));
    }

    #[test]
    fn resume_supports_cost_only_config_change() {
        // Snapshot under AstSize, resume under RewardLoops: must equal a
        // cold RewardLoops run (the saturated graph is cost-agnostic).
        let flat = row_of_cubes(2, 2.0);
        let (_, snapshot) = synthesize_with_snapshot(&flat, &SynthConfig::new());
        let reward = SynthConfig::new().with_cost(CostKind::RewardLoops);
        let resumed = resume_synthesize(&flat, &reward, &snapshot).unwrap();
        let cold = synthesize(&flat, &reward);
        assert_eq!(resumed.best().cad.to_string(), cold.best().cad.to_string());
        assert_eq!(resumed.structured().map(|(r, _)| r), Some(1));
    }

    #[test]
    fn resume_rejects_mismatches() {
        let flat = row_of_cubes(3, 2.0);
        let config = SynthConfig::new();
        let (_, snapshot) = synthesize_with_snapshot(&flat, &config);
        assert_eq!(
            resume_synthesize(&row_of_cubes(4, 2.0), &config, &snapshot).unwrap_err(),
            ResumeError::InputMismatch
        );
        // A rule-set change is a saturation change: snapshot refused.
        assert_eq!(
            resume_synthesize(&flat, &config.with_structural_rules(true), &snapshot).unwrap_err(),
            ResumeError::ConfigMismatch
        );
    }

    #[test]
    fn synth_snapshot_text_roundtrip_and_errors() {
        let flat = row_of_cubes(3, 2.0);
        let (_, snapshot) = synthesize_with_snapshot(&flat, &SynthConfig::new());
        assert!(
            snapshot.sat_phase().is_some(),
            "single-round capture carries the saturation phase"
        );
        let text = snapshot.to_string();
        assert_eq!(text.lines().next(), Some("szsynth v3"));
        let back: SynthSnapshot = text.parse().unwrap();
        assert_eq!(back, snapshot);
        assert_eq!(back.to_string(), text, "reserialization is byte-stable");
        assert!(back.iterations() > 0);
        assert_eq!(
            back.sat_phase().unwrap().iterations(),
            back.iterations(),
            "single-round runs saturate once: both sections agree on the count"
        );

        // Header and truncation corruption yield errors, never panics.
        assert!("szsynth v9\n".parse::<SynthSnapshot>().is_err());
        let err = text
            .replacen("szsnap v1", "szsnap v99", 1)
            .parse::<SynthSnapshot>()
            .unwrap_err();
        let nstats = snapshot.sat_phase().unwrap().rule_stats().len();
        assert_eq!(
            err.line(),
            5 + nstats,
            "inner errors are offset past the header (3 lines), satphase \
             descriptor, and rulestat table"
        );
        for cut in [0, 10, text.len() / 2, text.len() - 10] {
            assert!(text[..cut].parse::<SynthSnapshot>().is_err());
        }
    }

    #[test]
    fn legacy_v1_snapshot_text_still_parses() {
        // Caches written before the v2 bump hold `szsynth v1` text with
        // no satphase line; they must keep serving extraction-only
        // resumes (and report no partial-resume support).
        let flat = row_of_cubes(3, 2.0);
        let config = SynthConfig::new();
        let (_, snapshot) = synthesize_with_snapshot(&flat, &config);
        let v3 = snapshot.to_string();
        // Rebuild the v1 form: old header, no satphase section.
        let final_graph = snapshot.egraph_snapshot().to_string();
        let mut v1 = String::new();
        for line in v3.lines().take(3) {
            v1.push_str(line);
            v1.push('\n');
        }
        v1 = v1.replacen("szsynth v3", "szsynth v1", 1);
        v1.push_str(&final_graph);

        let legacy: SynthSnapshot = v1.parse().unwrap();
        assert_eq!(legacy.input_sexp(), snapshot.input_sexp());
        assert_eq!(
            legacy.saturation_fingerprint(),
            snapshot.saturation_fingerprint()
        );
        assert!(legacy.sat_phase().is_none());
        assert!(!legacy.supports_partial_resume(&config));
        let resumed = resume_synthesize(&flat, &config, &legacy).unwrap();
        assert_eq!(resumed.iterations, 0);
    }

    #[test]
    fn legacy_v2_snapshot_text_still_parses() {
        // Caches written before the v3 bump hold `szsynth v2` text: a
        // five-token satphase descriptor and no `rulestat` table. They
        // must keep supporting partial resume (with empty lifetime
        // stats).
        let flat = row_of_cubes(3, 2.0);
        let config = SynthConfig::new();
        let (_, snapshot) = synthesize_with_snapshot(&flat, &config);
        let nstats = snapshot.sat_phase().unwrap().rule_stats().len();
        let mut v2 = String::new();
        for (i, line) in snapshot.to_string().lines().enumerate() {
            if i == 0 {
                v2.push_str("szsynth v2");
            } else if i == 3 {
                // Drop the trailing `<rulestats>` token from the
                // descriptor.
                let cut = line.rfind(' ').unwrap();
                v2.push_str(&line[..cut]);
            } else if (4..4 + nstats).contains(&i) {
                continue; // the rulestat table is v3-only
            } else {
                v2.push_str(line);
            }
            v2.push('\n');
        }

        let legacy: SynthSnapshot = v2.parse().unwrap();
        assert_eq!(legacy.input_sexp(), snapshot.input_sexp());
        let phase = legacy.sat_phase().unwrap();
        assert_eq!(
            phase.iterations(),
            snapshot.sat_phase().unwrap().iterations()
        );
        assert!(phase.rule_stats().is_empty());
        assert!(legacy.supports_partial_resume(&config));
    }

    #[test]
    fn core_fingerprint_ignores_fuel_but_not_semantics() {
        let base = SynthConfig::new();
        // Fuel-limit changes keep the core fingerprint...
        for v in [
            base.clone().with_iter_limit(7),
            base.clone().with_node_limit(9),
        ] {
            assert_eq!(
                v.saturation_core_fingerprint(),
                base.saturation_core_fingerprint()
            );
            // ...while still changing the full saturation fingerprint.
            assert_ne!(v.saturation_fingerprint(), base.saturation_fingerprint());
        }
        // Semantic changes invalidate the core.
        for v in [
            base.clone().with_eps(1e-2),
            base.clone().with_structural_rules(true),
            base.clone().with_backoff(true),
            base.clone().with_main_loop_fuel(3),
        ] {
            assert_ne!(
                v.saturation_core_fingerprint(),
                base.saturation_core_fingerprint(),
                "{v:?}"
            );
        }
    }

    #[test]
    fn supports_partial_resume_requires_core_match_and_lower_fuel() {
        let flat = row_of_cubes(3, 2.0);
        let low = SynthConfig::new()
            .with_iter_limit(10)
            .with_node_limit(10_000);
        let (_, snapshot) = synthesize_with_snapshot(&flat, &low);

        // Higher (or equal) fuel: resumable.
        assert!(snapshot.supports_partial_resume(&low.clone().with_iter_limit(50)));
        assert!(snapshot.supports_partial_resume(&low));
        // Lower fuel than the producer: the snapshot overshoots.
        assert!(!snapshot.supports_partial_resume(&low.clone().with_iter_limit(5)));
        assert!(!snapshot.supports_partial_resume(&low.clone().with_node_limit(5_000)));
        // Core changes: not resumable at any fuel.
        assert!(!snapshot.supports_partial_resume(&low.clone().with_eps(1e-2).with_iter_limit(50)));
        // Multi-round configs never partially resume.
        assert!(!snapshot.supports_partial_resume(&low.with_main_loop_fuel(2).with_iter_limit(50)));
    }

    #[test]
    fn probe_header_agrees_with_the_full_parse() {
        let flat = row_of_cubes(3, 2.0);
        let low = SynthConfig::new()
            .with_iter_limit(10)
            .with_node_limit(10_000);
        let (_, snapshot) = synthesize_with_snapshot(&flat, &low);
        assert!(snapshot.sat_phase().is_some(), "precondition: continuable");
        let text = snapshot.to_string();

        let header = SynthSnapshot::probe_header(&text).unwrap();
        assert_eq!(header.input, snapshot.input_sexp());
        assert_eq!(header.sat_fp, snapshot.saturation_fingerprint());
        let phase = header.sat_phase.as_ref().unwrap();
        assert_eq!(*phase, snapshot.sat_phase().unwrap().header());
        // The probe's fuel check mirrors supports_partial_resume for
        // every single-round config.
        for config in [
            low.clone().with_iter_limit(50),
            low.clone(),
            low.clone().with_iter_limit(5),
            low.clone().with_node_limit(5_000),
            low.with_eps(1e-2).with_iter_limit(50),
        ] {
            assert_eq!(
                phase.fits(&config),
                snapshot.supports_partial_resume(&config),
                "{config:?}"
            );
        }

        // Stripped snapshots probe with no sat-phase descriptor.
        let stripped = SynthSnapshot::probe_header(&snapshot.without_sat_phase().to_string());
        assert_eq!(stripped.unwrap().sat_phase, None);
        // Garbage probes to None instead of erroring.
        assert_eq!(SynthSnapshot::probe_header("szsynth v9\nnope"), None);
        assert_eq!(SynthSnapshot::probe_header(""), None);
    }

    #[test]
    fn gear_like_model_under_diff() {
        // Diff(base, union-of-teeth): the fold lives under a Diff, as in
        // the real gear.
        let teeth: Vec<Cad> = (1..=6)
            .map(|i| {
                Cad::rotate(
                    0.0,
                    0.0,
                    60.0 * i as f64,
                    Cad::translate(12.0, 0.0, 0.0, Cad::External("tooth".into())),
                )
            })
            .collect();
        let flat = Cad::diff(
            Cad::scale(10.0, 10.0, 2.0, Cad::Cylinder),
            Cad::union_chain(teeth),
        );
        let result = synthesize(&flat, &SynthConfig::new());
        let (rank, prog) = result.structured().unwrap();
        let s = prog.cad.to_string();
        assert!(rank <= 5);
        assert!(
            s.contains("(Repeat (Translate 12 0 0 (External tooth)) 6)")
                || s.contains("(Repeat (External tooth) 6)"),
            "got {s}"
        );
        assert!(s.contains("(/ (* 360 (+ i 1)) 6)"), "got {s}");
        // The base stays outside the loop, under the Diff.
        assert!(s.starts_with("(Diff (Scale 10 10 2 Cylinder)"), "got {s}");
    }
}
