//! [`CadLang`]: the e-graph term language for CSG/LambdaCAD, plus lossless
//! conversions to and from the tree AST [`sz_cad::Cad`].
//!
//! The e-graph form differs from the surface AST in two ways: vectors are
//! explicit `(Vec3 x y z)` nodes (so rewrites can bind a whole vector with
//! one pattern variable), and `Fold`'s operator is a leaf node
//! (`UnionOp`/...).

use sz_cad::{AffineKind, BoolOp, Cad, Expr, OrderedF64, V3};
use sz_egraph::{FromOpError, Id, Language, RecExpr, Symbol};

/// An e-node of the CAD language.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CadLang {
    /// Numeric literal.
    Num(OrderedF64),
    /// Loop index variable (0 = `i`, 1 = `j`, 2 = `k`).
    Idx(u8),
    /// Addition of two numeric subterms.
    Add([Id; 2]),
    /// Subtraction.
    Sub([Id; 2]),
    /// Multiplication.
    Mul([Id; 2]),
    /// Division.
    Div([Id; 2]),
    /// Sine (degrees).
    Sin([Id; 1]),
    /// Cosine (degrees).
    Cos([Id; 1]),
    /// A vector of three numeric subterms.
    Vec3([Id; 3]),
    /// The empty solid.
    Empty,
    /// Unit cube.
    Unit,
    /// Unit cylinder.
    Cylinder,
    /// Unit sphere.
    Sphere,
    /// Unit hexagonal prism.
    Hexagon,
    /// Named opaque solid.
    External(Symbol),
    /// `Translate(vec, cad)`.
    Translate([Id; 2]),
    /// `Scale(vec, cad)`.
    Scale([Id; 2]),
    /// `Rotate(vec, cad)`.
    Rotate([Id; 2]),
    /// Set union.
    Union([Id; 2]),
    /// Set difference.
    Diff([Id; 2]),
    /// Set intersection.
    Inter([Id; 2]),
    /// Empty list.
    Nil,
    /// List cons.
    Cons([Id; 2]),
    /// List append.
    Concat([Id; 2]),
    /// `Repeat(cad, n)`.
    Repeat([Id; 2]),
    /// `Mapi(fun, list)`.
    Mapi([Id; 2]),
    /// Index loop with 1 bound: `(bound, body)`.
    MapIdx1([Id; 2]),
    /// Index loop with 2 bounds: `(b1, b2, body)`.
    MapIdx2([Id; 3]),
    /// Index loop with 3 bounds: `(b1, b2, b3, body)`.
    MapIdx3([Id; 4]),
    /// Unary function binding `i` and `c`.
    Fun([Id; 1]),
    /// The `Mapi` element variable `c`.
    Param,
    /// Fold operator leaf: union.
    UnionOp,
    /// Fold operator leaf: difference.
    DiffOp,
    /// Fold operator leaf: intersection.
    InterOp,
    /// `Fold(op, init, list)`.
    Fold([Id; 3]),
}

impl CadLang {
    /// The affine kind of this node, if it is an affine transformation.
    pub fn affine_kind(&self) -> Option<AffineKind> {
        match self {
            CadLang::Translate(_) => Some(AffineKind::Translate),
            CadLang::Scale(_) => Some(AffineKind::Scale),
            CadLang::Rotate(_) => Some(AffineKind::Rotate),
            _ => None,
        }
    }

    /// Builds an affine node of the given kind.
    pub fn affine(kind: AffineKind, vec: Id, cad: Id) -> CadLang {
        match kind {
            AffineKind::Translate => CadLang::Translate([vec, cad]),
            AffineKind::Scale => CadLang::Scale([vec, cad]),
            AffineKind::Rotate => CadLang::Rotate([vec, cad]),
        }
    }

    /// Builds a boolean node of the given operator.
    pub fn binop(op: BoolOp, a: Id, b: Id) -> CadLang {
        match op {
            BoolOp::Union => CadLang::Union([a, b]),
            BoolOp::Diff => CadLang::Diff([a, b]),
            BoolOp::Inter => CadLang::Inter([a, b]),
        }
    }

    /// The fold-operator leaf for a boolean operator.
    pub fn fold_op(op: BoolOp) -> CadLang {
        match op {
            BoolOp::Union => CadLang::UnionOp,
            BoolOp::Diff => CadLang::DiffOp,
            BoolOp::Inter => CadLang::InterOp,
        }
    }

    /// The boolean operator denoted by a fold-operator leaf.
    pub fn as_fold_op(&self) -> Option<BoolOp> {
        match self {
            CadLang::UnionOp => Some(BoolOp::Union),
            CadLang::DiffOp => Some(BoolOp::Diff),
            CadLang::InterOp => Some(BoolOp::Inter),
            _ => None,
        }
    }
}

impl Language for CadLang {
    fn children(&self) -> &[Id] {
        match self {
            CadLang::Num(_)
            | CadLang::Idx(_)
            | CadLang::Empty
            | CadLang::Unit
            | CadLang::Cylinder
            | CadLang::Sphere
            | CadLang::Hexagon
            | CadLang::External(_)
            | CadLang::Nil
            | CadLang::Param
            | CadLang::UnionOp
            | CadLang::DiffOp
            | CadLang::InterOp => &[],
            CadLang::Sin(ids) | CadLang::Cos(ids) | CadLang::Fun(ids) => ids,
            CadLang::Add(ids)
            | CadLang::Sub(ids)
            | CadLang::Mul(ids)
            | CadLang::Div(ids)
            | CadLang::Translate(ids)
            | CadLang::Scale(ids)
            | CadLang::Rotate(ids)
            | CadLang::Union(ids)
            | CadLang::Diff(ids)
            | CadLang::Inter(ids)
            | CadLang::Cons(ids)
            | CadLang::Concat(ids)
            | CadLang::Repeat(ids)
            | CadLang::Mapi(ids)
            | CadLang::MapIdx1(ids) => ids,
            CadLang::Vec3(ids) | CadLang::MapIdx2(ids) | CadLang::Fold(ids) => ids,
            CadLang::MapIdx3(ids) => ids,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            CadLang::Num(_)
            | CadLang::Idx(_)
            | CadLang::Empty
            | CadLang::Unit
            | CadLang::Cylinder
            | CadLang::Sphere
            | CadLang::Hexagon
            | CadLang::External(_)
            | CadLang::Nil
            | CadLang::Param
            | CadLang::UnionOp
            | CadLang::DiffOp
            | CadLang::InterOp => &mut [],
            CadLang::Sin(ids) | CadLang::Cos(ids) | CadLang::Fun(ids) => ids,
            CadLang::Add(ids)
            | CadLang::Sub(ids)
            | CadLang::Mul(ids)
            | CadLang::Div(ids)
            | CadLang::Translate(ids)
            | CadLang::Scale(ids)
            | CadLang::Rotate(ids)
            | CadLang::Union(ids)
            | CadLang::Diff(ids)
            | CadLang::Inter(ids)
            | CadLang::Cons(ids)
            | CadLang::Concat(ids)
            | CadLang::Repeat(ids)
            | CadLang::Mapi(ids)
            | CadLang::MapIdx1(ids) => ids,
            CadLang::Vec3(ids) | CadLang::MapIdx2(ids) | CadLang::Fold(ids) => ids,
            CadLang::MapIdx3(ids) => ids,
        }
    }

    fn op_name(&self) -> String {
        match self {
            CadLang::Num(x) => x.to_string(),
            CadLang::Idx(0) => "i".into(),
            CadLang::Idx(1) => "j".into(),
            CadLang::Idx(_) => "k".into(),
            CadLang::Add(_) => "+".into(),
            CadLang::Sub(_) => "-".into(),
            CadLang::Mul(_) => "*".into(),
            CadLang::Div(_) => "/".into(),
            CadLang::Sin(_) => "Sin".into(),
            CadLang::Cos(_) => "Cos".into(),
            CadLang::Vec3(_) => "Vec3".into(),
            CadLang::Empty => "Empty".into(),
            CadLang::Unit => "Unit".into(),
            CadLang::Cylinder => "Cylinder".into(),
            CadLang::Sphere => "Sphere".into(),
            CadLang::Hexagon => "Hexagon".into(),
            CadLang::External(s) => format!("Ext:{s}"),
            CadLang::Translate(_) => "Translate".into(),
            CadLang::Scale(_) => "Scale".into(),
            CadLang::Rotate(_) => "Rotate".into(),
            CadLang::Union(_) => "Union".into(),
            CadLang::Diff(_) => "Diff".into(),
            CadLang::Inter(_) => "Inter".into(),
            CadLang::Nil => "Nil".into(),
            CadLang::Cons(_) => "Cons".into(),
            CadLang::Concat(_) => "Concat".into(),
            CadLang::Repeat(_) => "Repeat".into(),
            CadLang::Mapi(_) => "Mapi".into(),
            CadLang::MapIdx1(_) => "MapIdx".into(),
            CadLang::MapIdx2(_) => "MapIdx2".into(),
            CadLang::MapIdx3(_) => "MapIdx3".into(),
            CadLang::Fun(_) => "Fun".into(),
            CadLang::Param => "c".into(),
            CadLang::UnionOp => "UnionOp".into(),
            CadLang::DiffOp => "DiffOp".into(),
            CadLang::InterOp => "InterOp".into(),
            CadLang::Fold(_) => "Fold".into(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, FromOpError> {
        let n = children.len();
        let c = |i: usize| children[i];
        let pair = |ctor: fn([Id; 2]) -> CadLang| {
            if n == 2 {
                Ok(ctor([c(0), c(1)]))
            } else {
                Err(FromOpError::new(op, n, "expects 2 children"))
            }
        };
        let one = |ctor: fn([Id; 1]) -> CadLang| {
            if n == 1 {
                Ok(ctor([c(0)]))
            } else {
                Err(FromOpError::new(op, n, "expects 1 child"))
            }
        };
        let leaf = |node: CadLang| {
            if n == 0 {
                Ok(node)
            } else {
                Err(FromOpError::new(op, n, "expects no children"))
            }
        };
        match op {
            "+" => pair(CadLang::Add),
            "-" => pair(CadLang::Sub),
            "*" => pair(CadLang::Mul),
            "/" => pair(CadLang::Div),
            "Sin" => one(CadLang::Sin),
            "Cos" => one(CadLang::Cos),
            "Vec3" => {
                if n == 3 {
                    Ok(CadLang::Vec3([c(0), c(1), c(2)]))
                } else {
                    Err(FromOpError::new(op, n, "expects 3 children"))
                }
            }
            "i" => leaf(CadLang::Idx(0)),
            "j" => leaf(CadLang::Idx(1)),
            "k" => leaf(CadLang::Idx(2)),
            "Empty" => leaf(CadLang::Empty),
            "Unit" => leaf(CadLang::Unit),
            "Cylinder" => leaf(CadLang::Cylinder),
            "Sphere" => leaf(CadLang::Sphere),
            "Hexagon" => leaf(CadLang::Hexagon),
            "Nil" => leaf(CadLang::Nil),
            "c" => leaf(CadLang::Param),
            "UnionOp" => leaf(CadLang::UnionOp),
            "DiffOp" => leaf(CadLang::DiffOp),
            "InterOp" => leaf(CadLang::InterOp),
            "Translate" => pair(CadLang::Translate),
            "Scale" => pair(CadLang::Scale),
            "Rotate" => pair(CadLang::Rotate),
            "Union" => pair(CadLang::Union),
            "Diff" => pair(CadLang::Diff),
            "Inter" => pair(CadLang::Inter),
            "Cons" => pair(CadLang::Cons),
            "Concat" => pair(CadLang::Concat),
            "Repeat" => pair(CadLang::Repeat),
            "Mapi" => pair(CadLang::Mapi),
            "MapIdx" => pair(CadLang::MapIdx1),
            "MapIdx2" => {
                if n == 3 {
                    Ok(CadLang::MapIdx2([c(0), c(1), c(2)]))
                } else {
                    Err(FromOpError::new(op, n, "expects 3 children"))
                }
            }
            "MapIdx3" => {
                if n == 4 {
                    Ok(CadLang::MapIdx3([c(0), c(1), c(2), c(3)]))
                } else {
                    Err(FromOpError::new(op, n, "expects 4 children"))
                }
            }
            "Fun" => one(CadLang::Fun),
            "Fold" => {
                if n == 3 {
                    Ok(CadLang::Fold([c(0), c(1), c(2)]))
                } else {
                    Err(FromOpError::new(op, n, "expects 3 children"))
                }
            }
            _ => {
                if let Some(name) = op.strip_prefix("Ext:") {
                    leaf(CadLang::External(Symbol::new(name)))
                } else if let Ok(x) = op.parse::<f64>() {
                    leaf(CadLang::Num(OrderedF64::new(x)))
                } else {
                    Err(FromOpError::new(op, n, "unknown operator"))
                }
            }
        }
    }
}

fn expr_to_lang(expr: &Expr, out: &mut RecExpr<CadLang>) -> Id {
    match expr {
        Expr::Num(x) => out.add(CadLang::Num(*x)),
        Expr::Idx(d) => out.add(CadLang::Idx(*d)),
        Expr::Add(a, b) => {
            let (a, b) = (expr_to_lang(a, out), expr_to_lang(b, out));
            out.add(CadLang::Add([a, b]))
        }
        Expr::Sub(a, b) => {
            let (a, b) = (expr_to_lang(a, out), expr_to_lang(b, out));
            out.add(CadLang::Sub([a, b]))
        }
        Expr::Mul(a, b) => {
            let (a, b) = (expr_to_lang(a, out), expr_to_lang(b, out));
            out.add(CadLang::Mul([a, b]))
        }
        Expr::Div(a, b) => {
            let (a, b) = (expr_to_lang(a, out), expr_to_lang(b, out));
            out.add(CadLang::Div([a, b]))
        }
        Expr::Sin(a) => {
            let a = expr_to_lang(a, out);
            out.add(CadLang::Sin([a]))
        }
        Expr::Cos(a) => {
            let a = expr_to_lang(a, out);
            out.add(CadLang::Cos([a]))
        }
    }
}

fn cad_to_lang_rec(cad: &Cad, out: &mut RecExpr<CadLang>) -> Id {
    match cad {
        Cad::Empty => out.add(CadLang::Empty),
        Cad::Unit => out.add(CadLang::Unit),
        Cad::Cylinder => out.add(CadLang::Cylinder),
        Cad::Sphere => out.add(CadLang::Sphere),
        Cad::Hexagon => out.add(CadLang::Hexagon),
        Cad::External(name) => out.add(CadLang::External(Symbol::new(name))),
        Cad::Param => out.add(CadLang::Param),
        Cad::Nil => out.add(CadLang::Nil),
        Cad::Affine(kind, v, c) => {
            let x = expr_to_lang(&v.0, out);
            let y = expr_to_lang(&v.1, out);
            let z = expr_to_lang(&v.2, out);
            let vec = out.add(CadLang::Vec3([x, y, z]));
            let c = cad_to_lang_rec(c, out);
            out.add(CadLang::affine(*kind, vec, c))
        }
        Cad::Binop(op, a, b) => {
            let a = cad_to_lang_rec(a, out);
            let b = cad_to_lang_rec(b, out);
            out.add(CadLang::binop(*op, a, b))
        }
        Cad::Cons(h, t) => {
            let h = cad_to_lang_rec(h, out);
            let t = cad_to_lang_rec(t, out);
            out.add(CadLang::Cons([h, t]))
        }
        Cad::Concat(a, b) => {
            let a = cad_to_lang_rec(a, out);
            let b = cad_to_lang_rec(b, out);
            out.add(CadLang::Concat([a, b]))
        }
        Cad::Repeat(c, n) => {
            let c = cad_to_lang_rec(c, out);
            let n = expr_to_lang(n, out);
            out.add(CadLang::Repeat([c, n]))
        }
        Cad::Mapi(f, l) => {
            let f = cad_to_lang_rec(f, out);
            let l = cad_to_lang_rec(l, out);
            out.add(CadLang::Mapi([f, l]))
        }
        Cad::MapIdx(bounds, body) => {
            let bs: Vec<Id> = bounds.iter().map(|b| expr_to_lang(b, out)).collect();
            let body = cad_to_lang_rec(body, out);
            match bs.len() {
                1 => out.add(CadLang::MapIdx1([bs[0], body])),
                2 => out.add(CadLang::MapIdx2([bs[0], bs[1], body])),
                _ => out.add(CadLang::MapIdx3([bs[0], bs[1], bs[2], body])),
            }
        }
        Cad::Fun(body) => {
            let body = cad_to_lang_rec(body, out);
            out.add(CadLang::Fun([body]))
        }
        Cad::Fold(op, init, list) => {
            let o = out.add(CadLang::fold_op(*op));
            let init = cad_to_lang_rec(init, out);
            let list = cad_to_lang_rec(list, out);
            out.add(CadLang::Fold([o, init, list]))
        }
    }
}

/// Converts a surface AST into an e-graph expression.
pub fn cad_to_lang(cad: &Cad) -> RecExpr<CadLang> {
    let mut out = RecExpr::new();
    cad_to_lang_rec(cad, &mut out);
    out
}

/// Error converting an e-graph expression back to the surface AST (e.g. a
/// numeric node where a solid was expected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromLangError(String);

impl std::fmt::Display for FromLangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot convert e-graph term to CAD: {}", self.0)
    }
}

impl std::error::Error for FromLangError {}

fn lang_to_expr(expr: &RecExpr<CadLang>, id: Id) -> Result<Expr, FromLangError> {
    let e = |i: Id| lang_to_expr(expr, i);
    match &expr[id] {
        CadLang::Num(x) => Ok(Expr::Num(*x)),
        CadLang::Idx(d) => Ok(Expr::Idx(*d)),
        CadLang::Add([a, b]) => Ok(Expr::Add(Box::new(e(*a)?), Box::new(e(*b)?))),
        CadLang::Sub([a, b]) => Ok(Expr::Sub(Box::new(e(*a)?), Box::new(e(*b)?))),
        CadLang::Mul([a, b]) => Ok(Expr::Mul(Box::new(e(*a)?), Box::new(e(*b)?))),
        CadLang::Div([a, b]) => Ok(Expr::Div(Box::new(e(*a)?), Box::new(e(*b)?))),
        CadLang::Sin([a]) => Ok(Expr::Sin(Box::new(e(*a)?))),
        CadLang::Cos([a]) => Ok(Expr::Cos(Box::new(e(*a)?))),
        other => Err(FromLangError(format!(
            "expected numeric expression, found {}",
            other.op_name()
        ))),
    }
}

/// Converts the subtree rooted at `id` back to the surface AST.
///
/// # Errors
///
/// Returns [`FromLangError`] if the term is ill-sorted (a number where a
/// solid belongs, etc.), which indicates a bug in rule construction.
pub fn lang_to_cad_at(expr: &RecExpr<CadLang>, id: Id) -> Result<Cad, FromLangError> {
    let c = |i: Id| lang_to_cad_at(expr, i);
    let e = |i: Id| lang_to_expr(expr, i);
    match &expr[id] {
        CadLang::Empty => Ok(Cad::Empty),
        CadLang::Unit => Ok(Cad::Unit),
        CadLang::Cylinder => Ok(Cad::Cylinder),
        CadLang::Sphere => Ok(Cad::Sphere),
        CadLang::Hexagon => Ok(Cad::Hexagon),
        CadLang::External(s) => Ok(Cad::External(s.as_str().to_owned())),
        CadLang::Param => Ok(Cad::Param),
        CadLang::Nil => Ok(Cad::Nil),
        node @ (CadLang::Translate([v, ch])
        | CadLang::Scale([v, ch])
        | CadLang::Rotate([v, ch])) => {
            let kind = node.affine_kind().expect("matched affine");
            let CadLang::Vec3([x, y, z]) = expr[*v] else {
                return Err(FromLangError("affine argument must be a Vec3".into()));
            };
            Ok(Cad::Affine(
                kind,
                V3(e(x)?, e(y)?, e(z)?),
                Box::new(c(*ch)?),
            ))
        }
        CadLang::Union([a, b]) => Ok(Cad::union(c(*a)?, c(*b)?)),
        CadLang::Diff([a, b]) => Ok(Cad::diff(c(*a)?, c(*b)?)),
        CadLang::Inter([a, b]) => Ok(Cad::inter(c(*a)?, c(*b)?)),
        CadLang::Cons([h, t]) => Ok(Cad::Cons(Box::new(c(*h)?), Box::new(c(*t)?))),
        CadLang::Concat([a, b]) => Ok(Cad::Concat(Box::new(c(*a)?), Box::new(c(*b)?))),
        CadLang::Repeat([ch, n]) => Ok(Cad::Repeat(Box::new(c(*ch)?), e(*n)?)),
        CadLang::Mapi([f, l]) => Ok(Cad::Mapi(Box::new(c(*f)?), Box::new(c(*l)?))),
        CadLang::MapIdx1([b, body]) => Ok(Cad::MapIdx(vec![e(*b)?], Box::new(c(*body)?))),
        CadLang::MapIdx2([b1, b2, body]) => {
            Ok(Cad::MapIdx(vec![e(*b1)?, e(*b2)?], Box::new(c(*body)?)))
        }
        CadLang::MapIdx3([b1, b2, b3, body]) => Ok(Cad::MapIdx(
            vec![e(*b1)?, e(*b2)?, e(*b3)?],
            Box::new(c(*body)?),
        )),
        CadLang::Fun([body]) => Ok(Cad::Fun(Box::new(c(*body)?))),
        CadLang::Fold([op, init, list]) => {
            let op = expr[*op].as_fold_op().ok_or_else(|| {
                FromLangError("Fold operator must be UnionOp/DiffOp/InterOp".into())
            })?;
            Ok(Cad::Fold(op, Box::new(c(*init)?), Box::new(c(*list)?)))
        }
        other => Err(FromLangError(format!(
            "expected a CAD term, found {}",
            other.op_name()
        ))),
    }
}

/// Converts a whole e-graph expression (rooted at its last node) back to
/// the surface AST.
///
/// # Errors
///
/// See [`lang_to_cad_at`].
pub fn lang_to_cad(expr: &RecExpr<CadLang>) -> Result<Cad, FromLangError> {
    lang_to_cad_at(expr, expr.root())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let cad: Cad = s.parse().unwrap();
        let lang = cad_to_lang(&cad);
        let back = lang_to_cad(&lang).unwrap();
        assert_eq!(back, cad, "roundtrip through CadLang failed for {s}");
    }

    #[test]
    fn ast_roundtrips() {
        for s in [
            "Unit",
            "(Union Unit Sphere)",
            "(Translate 1 2 3 (Scale 2 2 2 Cylinder))",
            "(Fold Union Empty (Cons Unit (Cons Sphere Nil)))",
            "(Mapi (Fun (Translate (* 2 (+ i 1)) 0 0 c)) (Repeat Unit 5))",
            "(MapIdx2 2 3 (Translate (- (* 24 i) 12) (- (* 24 j) 12) 0 Unit))",
            "(MapIdx3 2 2 2 (Translate i j k Unit))",
            "(External hull_part)",
            "(Concat (Repeat Unit 2) Nil)",
            "(Translate (+ 10 (* 7.07 (Sin (+ (* 90 i) 315)))) 0 1.5 Hexagon)",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn lang_expr_parses_patterns() {
        // The e-graph surface form used by rewrite rules.
        let e: RecExpr<CadLang> =
            "(Union (Translate (Vec3 1 2 3) Unit) (Translate (Vec3 1 2 3) Sphere))"
                .parse()
                .unwrap();
        // RecExpr parsing does not deduplicate repeated subterms.
        assert_eq!(e.len(), 13);
        let cad = lang_to_cad(&e).unwrap();
        assert_eq!(
            cad.to_string(),
            "(Union (Translate 1 2 3 Unit) (Translate 1 2 3 Sphere))"
        );
    }

    #[test]
    fn external_symbol_roundtrip() {
        let e: RecExpr<CadLang> = "Ext:mirror_part".parse().unwrap();
        assert_eq!(
            lang_to_cad(&e).unwrap(),
            Cad::External("mirror_part".into())
        );
    }

    #[test]
    fn ill_sorted_conversion_fails() {
        let e: RecExpr<CadLang> = "(Union 1 Unit)".parse().unwrap();
        assert!(lang_to_cad(&e).is_err());
        let e: RecExpr<CadLang> = "(Translate Unit Unit)".parse().unwrap();
        assert!(lang_to_cad(&e).is_err());
    }

    #[test]
    fn sharing_is_preserved_in_size() {
        let cad: Cad = "(Union (Translate 1 2 3 Unit) (Translate 1 2 3 Unit))"
            .parse()
            .unwrap();
        let lang = cad_to_lang(&cad);
        // RecExpr::add does not deduplicate; both subtrees are materialized.
        assert_eq!(lang.len(), 13);
    }
}
