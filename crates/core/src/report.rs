//! Output-program inspection and Table-1-style reporting: loop shape
//! tags (`n1,60`), closed-form tags (`d1`/`d2`/`θ`), and structure
//! detection for ranking.

use sz_cad::{Cad, Expr};

/// True if the program exposes repetitive structure: any `Repeat` with a
/// constant count ≥ 2, `Mapi`, or index loop.
pub fn has_structure(cad: &Cad) -> bool {
    match cad {
        Cad::Repeat(c, n) => n.as_num().map(|x| x >= 2.0).unwrap_or(true) || has_structure(c),
        Cad::Mapi(_, _) | Cad::MapIdx(_, _) => true,
        Cad::Affine(_, _, c) | Cad::Fun(c) => has_structure(c),
        Cad::Binop(_, a, b) | Cad::Cons(a, b) | Cad::Concat(a, b) => {
            has_structure(a) || has_structure(b)
        }
        Cad::Fold(_, init, list) => has_structure(init) || has_structure(list),
        _ => false,
    }
}

/// Length of a list-shaped subterm, if statically known.
fn list_len(cad: &Cad) -> Option<usize> {
    match cad {
        Cad::Nil => Some(0),
        Cad::Cons(_, t) => Some(1 + list_len(t)?),
        Cad::Concat(a, b) => Some(list_len(a)? + list_len(b)?),
        Cad::Repeat(_, n) => n.as_num().map(|x| x as usize),
        Cad::Mapi(_, l) => list_len(l),
        Cad::MapIdx(bounds, _) => bounds
            .iter()
            .map(|b| b.as_num().map(|x| x as usize))
            .product::<Option<usize>>(),
        _ => None,
    }
}

/// Collects the paper's `n-l` loop tags (`n1,60`, `n2,2,3`, ...) for all
/// loops in the program. Nested `Mapi` layers over one list count once.
pub fn loop_tags(cad: &Cad) -> Vec<String> {
    fn go(cad: &Cad, out: &mut Vec<String>) {
        match cad {
            Cad::Mapi(_, l) => {
                // Descend through stacked Mapi layers to the base list.
                let mut base = l;
                while let Cad::Mapi(_, inner) = &**base {
                    base = inner;
                }
                match &**base {
                    Cad::MapIdx(bounds, body) => {
                        push_mapidx(bounds, out);
                        go(body, out);
                    }
                    other => {
                        if let Some(n) = list_len(other) {
                            out.push(format!("n1,{n}"));
                        }
                        go(other, out);
                    }
                }
            }
            Cad::MapIdx(bounds, body) => {
                push_mapidx(bounds, out);
                go(body, out);
            }
            Cad::Repeat(c, _) => go(c, out),
            Cad::Affine(_, _, c) | Cad::Fun(c) => go(c, out),
            Cad::Binop(_, a, b) | Cad::Cons(a, b) | Cad::Concat(a, b) => {
                go(a, out);
                go(b, out);
            }
            Cad::Fold(_, init, list) => {
                go(init, out);
                go(list, out);
            }
            _ => {}
        }
    }
    fn push_mapidx(bounds: &[Expr], out: &mut Vec<String>) {
        let bs: Vec<String> = bounds
            .iter()
            .map(|b| {
                b.as_num()
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "?".into())
            })
            .collect();
        out.push(format!("n{},{}", bounds.len(), bs.join(",")));
    }
    let mut out = Vec::new();
    go(cad, &mut out);
    out
}

/// Classifies the closed forms used by the program's index expressions:
/// `θ` for trigonometric, `d2` for quadratic, `d1` for linear.
pub fn fit_tags(cad: &Cad) -> Vec<String> {
    fn expr_tag(e: &Expr) -> Option<&'static str> {
        fn has_trig(e: &Expr) -> bool {
            match e {
                Expr::Sin(_) | Expr::Cos(_) => true,
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                    has_trig(a) || has_trig(b)
                }
                _ => false,
            }
        }
        fn has_square(e: &Expr) -> bool {
            match e {
                Expr::Mul(a, b) => {
                    matches!((&**a, &**b), (Expr::Idx(x), Expr::Idx(y)) if x == y)
                        || has_square(a)
                        || has_square(b)
                }
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Div(a, b) => {
                    has_square(a) || has_square(b)
                }
                Expr::Sin(a) | Expr::Cos(a) => has_square(a),
                _ => false,
            }
        }
        if !e.uses_index() {
            None
        } else if has_trig(e) {
            Some("θ")
        } else if has_square(e) {
            Some("d2")
        } else {
            Some("d1")
        }
    }
    fn go(cad: &Cad, out: &mut Vec<String>) {
        match cad {
            Cad::Affine(_, v, c) => {
                for comp in v.components() {
                    if let Some(t) = expr_tag(comp) {
                        out.push(t.to_owned());
                    }
                }
                go(c, out);
            }
            Cad::Repeat(c, _) | Cad::Fun(c) => go(c, out),
            Cad::MapIdx(_, body) => go(body, out),
            Cad::Binop(_, a, b) | Cad::Cons(a, b) | Cad::Concat(a, b) | Cad::Mapi(a, b) => {
                go(a, out);
                go(b, out);
            }
            Cad::Fold(_, init, list) => {
                go(init, out);
                go(list, out);
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    go(cad, &mut out);
    out.sort();
    out.dedup();
    out
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name (e.g. `3362402:gear`).
    pub name: String,
    /// Input AST nodes.
    pub i_ns: usize,
    /// Output (best program) AST nodes.
    pub o_ns: usize,
    /// Input primitive count.
    pub i_p: usize,
    /// Output primitive count.
    pub o_p: usize,
    /// Input AST depth.
    pub i_d: usize,
    /// Output AST depth.
    pub o_d: usize,
    /// Loop tags of the structured program (`-` when none).
    pub n_l: String,
    /// Closed-form tags of the structured program (`-` when none).
    pub f: String,
    /// Synthesis wall-clock seconds.
    pub time_s: f64,
    /// 1-based rank of the first structured program in the top-k.
    pub rank: Option<usize>,
}

impl TableRow {
    /// Header matching the paper's column names.
    pub fn header() -> String {
        format!(
            "{:<24} {:>6} {:>6} {:>5} {:>5} {:>5} {:>5}  {:<14} {:<8} {:>8}  {:>3}",
            "Name", "#i-ns", "#o-ns", "#i-p", "#o-p", "#i-d", "#o-d", "n-l", "f", "#t(s)", "r"
        )
    }

    /// Formats the row for the console table.
    pub fn format(&self) -> String {
        format!(
            "{:<24} {:>6} {:>6} {:>5} {:>5} {:>5} {:>5}  {:<14} {:<8} {:>8.2}  {:>3}",
            self.name,
            self.i_ns,
            self.o_ns,
            self.i_p,
            self.o_p,
            self.i_d,
            self.o_d,
            self.n_l,
            self.f,
            self.time_s,
            self.rank
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
        )
    }

    /// Size reduction `1 − o_ns/i_ns`, the paper's headline metric.
    pub fn size_reduction(&self) -> f64 {
        1.0 - self.o_ns as f64 / self.i_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Cad {
        s.parse().unwrap()
    }

    #[test]
    fn structure_detection() {
        assert!(has_structure(&parse("(Repeat Unit 60)")));
        assert!(has_structure(&parse(
            "(Fold Union Empty (Mapi (Fun c) (Repeat Unit 3)))"
        )));
        assert!(!has_structure(&parse("(Union Unit Sphere)")));
        assert!(!has_structure(&parse("(Repeat Unit 1)")));
    }

    #[test]
    fn loop_tags_single() {
        let p = parse("(Fold Union Empty (Mapi (Fun (Rotate 0 0 (* 6 i) c)) (Repeat Unit 60)))");
        assert_eq!(loop_tags(&p), vec!["n1,60"]);
    }

    #[test]
    fn loop_tags_nested_mapi_counts_once() {
        let p = parse(
            "(Fold Union Empty (Mapi (Fun (Translate i 0 0 c)) (Mapi (Fun (Scale i 1 1 c)) (Repeat Unit 3))))",
        );
        assert_eq!(loop_tags(&p), vec!["n1,3"]);
    }

    #[test]
    fn loop_tags_mapidx() {
        let p = parse("(Fold Union Empty (MapIdx2 2 3 (Translate i j 0 Unit)))");
        assert_eq!(loop_tags(&p), vec!["n2,2,3"]);
    }

    #[test]
    fn fit_tag_classification() {
        assert_eq!(
            fit_tags(&parse("(Translate (* 2 (+ i 1)) 0 0 c)")),
            vec!["d1"]
        );
        assert_eq!(
            fit_tags(&parse("(Translate (+ (* 1.5 (* i i)) 2) 0 0 c)")),
            vec!["d2"]
        );
        assert_eq!(
            fit_tags(&parse("(Translate (* 7.07 (Sin (* 90 i))) 0 0 c)")),
            vec!["θ"]
        );
        assert!(fit_tags(&parse("(Translate 1 2 3 Unit)")).is_empty());
    }

    #[test]
    fn table_row_formatting() {
        let row = TableRow {
            name: "3362402:gear".into(),
            i_ns: 621,
            o_ns: 43,
            i_p: 63,
            o_p: 5,
            i_d: 62,
            o_d: 6,
            n_l: "n1,60".into(),
            f: "d1".into(),
            time_s: 1.25,
            rank: Some(2),
        };
        let s = row.format();
        assert!(s.contains("3362402:gear"));
        assert!(s.contains("n1,60"));
        assert!((row.size_reduction() - 0.9307568438).abs() < 1e-6);
        assert_eq!(TableRow::header().split_whitespace().count(), 11);
    }
}
