//! # szalinski: CAD parameter inference with equality saturation
//!
//! A from-scratch reproduction of **Szalinski/ShrinkRay** (Nandi et al.,
//! PLDI 2020 / arXiv:1909.12252): given a *flat* CSG program — the kind
//! produced by mesh decompilers or by unrolling parametric CAD — recover
//! editable **LambdaCAD** programs whose loops and closed-form index
//! arithmetic expose the model's latent repetitive structure.
//!
//! ## Pipeline (paper Fig. 5)
//!
//! 1. the input is loaded into an e-graph over [`CadLang`];
//! 2. [`rules()`] — ~40 semantics-preserving rewrites (affine lifting /
//!    reordering / collapsing, fold introduction, boolean laws) saturate
//!    the graph under fuel limits;
//! 3. [`determinize`](determinize::determinize) picks one consistent
//!    affine decomposition per list element;
//! 4. [`list_manipulation`] adds lexicographically sorted list variants
//!    inside commutative folds;
//! 5. [`infer_functions`] fits closed forms (degree-1/2 polynomials with
//!    ε tolerance, sinusoids) per affine layer and inserts
//!    `Mapi`/`Repeat` structure; [`infer_loops`] finds nested loops via
//!    m-factorization and the irregular-grid grouping fallback;
//! 6. extraction returns the **top-k** programs under any pluggable
//!    [`CostModel`] (the paper's AST size is the default, the
//!    `wardrobe@` loop-rewarding scheme a built-in; see [`cost`] for
//!    the weight-table/combinator models and the `pareto` two-objective
//!    front).
//!
//! ## Sessions, snapshots, and resume
//!
//! [`Synthesizer`] is the one entry point: built from a [`SynthConfig`],
//! it compiles the rule set once (cached process-wide) and
//! [`Synthesizer::run`] dispatches each call as **cold**,
//! **extraction-only resume** (an offered [`SynthSnapshot`] whose
//! [`SynthConfig::saturation_fingerprint`] matches exactly — zero
//! saturation iterations), or **partial-saturation resume** (a snapshot
//! whose [`SynthConfig::saturation_core_fingerprint`] matches with
//! lower-or-equal fuel limits — saturation *continues* from the stored
//! [`SatPhase`], landing byte-identical to a cold run at the higher
//! fuel). Which flavor ran is recorded in [`Synthesis`]`::mode`.
//!
//! Stores that hold many serialized snapshots decide what to offer via
//! [`SynthSnapshot::probe_header`], which reads a snapshot's identity
//! ([`SnapshotHeader`]) and fuel descriptor ([`SatPhaseHeader`]) from
//! its header lines without parsing the embedded e-graphs; `sz-batch`'s
//! snapshot tier indexes on the core fingerprint this way so a
//! fuel-raised rerun of a whole corpus resumes every job instead of
//! re-saturating. The probe is advisory: `run` re-checks
//! [`SynthSnapshot::supports_partial_resume`] before resuming, so a
//! stale or corrupt offer degrades to a cold run, never an unsound one.
//!
//! ## Example
//!
//! ```
//! use szalinski::{synthesize, SynthConfig};
//! use sz_cad::Cad;
//!
//! let flat = Cad::union_chain(
//!     (1..=5).map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit)).collect(),
//! );
//! let result = synthesize(&flat, &SynthConfig::new());
//! let (rank, prog) = result.structured().unwrap();
//! assert_eq!(rank, 1);
//! assert!(prog.cad.to_string().contains("Mapi"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cost;
pub mod determinize;
pub mod funcinfer;
pub mod lang;
pub mod listmanip;
pub mod lists;
pub mod loopinfer;
pub mod pipeline;
pub mod report;
pub mod rules;
pub mod session;

pub use analysis::{add_vec, num_of, vec_of, CadAnalysis, CadData, CadGraph};
pub use cost::{
    parse_cost_model, parse_cost_spec, validate_fingerprint, AstSizeCost, CadCost, CostKind,
    CostModel, CostSpec, CostSpecError, CostVec, DepthCost, DepthPenalty, GeomCount, Lexicographic,
    ModelCost, OpClass, RewardLoopsCost, WeightedCost, WeightedSum, COST_SPEC_GRAMMAR,
};
pub use determinize::{chains_of, determinize, determinize_all, AffineChain, ChainLayer, DetList};
pub use funcinfer::{
    infer_functions, infer_functions_with, InferenceRecord, LoopShape, PassControl,
};
pub use lang::{cad_to_lang, lang_to_cad, lang_to_cad_at, CadLang, FromLangError};
pub use listmanip::list_manipulation;
pub use lists::{add_cons_list, add_expr_tree, fold_sites, read_list, FoldSite};
pub use loopinfer::{factorizations, index_sets, infer_loops, infer_loops_with};
#[allow(deprecated)]
pub use pipeline::{
    resume_synthesize, synthesize, synthesize_with_snapshot, try_synthesize,
    try_synthesize_with_snapshot,
};
pub use pipeline::{
    ParetoProgram, ResumeError, SatPhase, SatPhaseHeader, SnapshotHeader, SynthConfig, SynthError,
    SynthProgram, SynthSnapshot, Synthesis,
};
pub use report::{fit_tags, has_structure, loop_tags, TableRow};
pub use rules::{all_rules, rules, structural_rules, CadRewrite};
pub use session::{RunLimits, RunMode, RunOptions, Synthesizer};
pub use sz_egraph::{CancelToken, ProgressObserver, RuleStat, StopReason};
pub use sz_lint::{lint_ruleset, Diagnostic as LintDiagnostic, Report as LintReport};
pub use sz_trace::{Metrics, Telemetry, Tracer};
