//! Reading concrete lists out of the e-graph and writing new list
//! structure back in — the interface between the e-graph and the solver
//! passes.

use sz_cad::{BoolOp, Cad, Expr, OrderedF64};
use sz_egraph::Id;

use crate::analysis::{num_of, CadGraph};
use crate::{cad_to_lang, CadLang};

/// A `Fold` occurrence: the class holding it and its three children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldSite {
    /// The e-class containing the `Fold` node.
    pub class: Id,
    /// The folded boolean operator.
    pub op: BoolOp,
    /// The accumulator class.
    pub init: Id,
    /// The list class.
    pub list: Id,
}

/// Finds every `Fold` node in the e-graph (paper Fig. 12's
/// `match_eg (eg, Fold (Var f) (Var acc) (Var l))`).
pub fn fold_sites(egraph: &CadGraph) -> Vec<FoldSite> {
    let mut sites = Vec::new();
    for class in egraph.classes() {
        for node in egraph.nodes_of(class) {
            let CadLang::Fold([op, init, list]) = node else {
                continue;
            };
            let Some(op) = egraph.class_nodes(*op).find_map(CadLang::as_fold_op) else {
                continue;
            };
            sites.push(FoldSite {
                class: egraph.find(class.id),
                op,
                init: egraph.find(*init),
                list: egraph.find(*list),
            });
        }
    }
    sites.sort_by_key(|s| (s.class, s.list));
    sites.dedup();
    sites
}

/// Reads the concrete element list of a list class by following
/// `Cons`/`Nil` (and constant-count `Repeat`) structure. Returns the
/// element class ids in order, or `None` if the class has no concrete
/// spine.
pub fn read_list(egraph: &CadGraph, id: Id) -> Option<Vec<Id>> {
    let mut out = Vec::new();
    let mut cur = egraph.find(id);
    for _ in 0..1_000_000 {
        if egraph.class_nodes(cur).any(|n| matches!(n, CadLang::Nil)) {
            return Some(out);
        }
        if let Some(CadLang::Cons([h, t])) = egraph
            .class_nodes(cur)
            .find(|n| matches!(n, CadLang::Cons(_)))
        {
            out.push(egraph.find(*h));
            cur = egraph.find(*t);
            continue;
        }
        if let Some(CadLang::Repeat([c, n])) = egraph
            .class_nodes(cur)
            .find(|n| matches!(n, CadLang::Repeat(_)))
        {
            let n = num_of(egraph, *n)?;
            if n < 0.0 || n.fract() != 0.0 || n > 100_000.0 {
                return None;
            }
            out.extend(std::iter::repeat_n(egraph.find(*c), n as usize));
            return Some(out);
        }
        return None;
    }
    None
}

/// Adds an explicit `Cons` list of the given element classes, returning
/// the class of its head.
pub fn add_cons_list(egraph: &mut CadGraph, elements: &[Id]) -> Id {
    let mut tail = egraph.add(CadLang::Nil);
    for &e in elements.iter().rev() {
        tail = egraph.add(CadLang::Cons([e, tail]));
    }
    tail
}

/// Adds a numeric literal.
pub fn add_num(egraph: &mut CadGraph, x: f64) -> Id {
    egraph.add(CadLang::Num(OrderedF64::new(x)))
}

/// Adds a surface-AST arithmetic expression to the e-graph.
pub fn add_expr_tree(egraph: &mut CadGraph, e: &Expr) -> Id {
    match e {
        Expr::Num(x) => egraph.add(CadLang::Num(*x)),
        Expr::Idx(d) => egraph.add(CadLang::Idx(*d)),
        Expr::Add(a, b) => {
            let (a, b) = (add_expr_tree(egraph, a), add_expr_tree(egraph, b));
            egraph.add(CadLang::Add([a, b]))
        }
        Expr::Sub(a, b) => {
            let (a, b) = (add_expr_tree(egraph, a), add_expr_tree(egraph, b));
            egraph.add(CadLang::Sub([a, b]))
        }
        Expr::Mul(a, b) => {
            let (a, b) = (add_expr_tree(egraph, a), add_expr_tree(egraph, b));
            egraph.add(CadLang::Mul([a, b]))
        }
        Expr::Div(a, b) => {
            let (a, b) = (add_expr_tree(egraph, a), add_expr_tree(egraph, b));
            egraph.add(CadLang::Div([a, b]))
        }
        Expr::Sin(a) => {
            let a = add_expr_tree(egraph, a);
            egraph.add(CadLang::Sin([a]))
        }
        Expr::Cos(a) => {
            let a = add_expr_tree(egraph, a);
            egraph.add(CadLang::Cos([a]))
        }
    }
}

/// Adds a whole surface-AST term to the e-graph, returning its class.
pub fn add_cad_tree(egraph: &mut CadGraph, cad: &Cad) -> Id {
    let expr = cad_to_lang(cad);
    egraph.add_expr(&expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_egraph::RecExpr;

    fn graph(s: &str) -> (CadGraph, Id) {
        let mut eg = CadGraph::default();
        let expr: RecExpr<CadLang> = s.parse().unwrap();
        let id = eg.add_expr(&expr);
        eg.rebuild();
        (eg, id)
    }

    #[test]
    fn read_cons_list() {
        let (eg, _) = graph("(Fold UnionOp Empty (Cons Unit (Cons Sphere Nil)))");
        let sites = fold_sites(&eg);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].op, BoolOp::Union);
        let items = read_list(&eg, sites[0].list).unwrap();
        assert_eq!(items.len(), 2);
        let unit = eg.lookup_expr(&"Unit".parse().unwrap()).unwrap();
        assert_eq!(eg.find(items[0]), eg.find(unit));
    }

    #[test]
    fn read_repeat_list() {
        let (eg, id) = graph("(Repeat Sphere 4)");
        let items = read_list(&eg, id).unwrap();
        assert_eq!(items.len(), 4);
        assert!(items.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn read_list_declines_symbolic() {
        let (eg, id) = graph("(Repeat Sphere (+ i 1))");
        assert_eq!(read_list(&eg, id), None);
        let (eg, id) = graph("Unit");
        assert_eq!(read_list(&eg, id), None);
    }

    #[test]
    fn cons_list_roundtrip() {
        let (mut eg, _) = graph("(Cons Unit Nil)");
        let unit = eg.lookup_expr(&"Unit".parse().unwrap()).unwrap();
        let sphere = add_cad_tree(&mut eg, &Cad::Sphere);
        let list = add_cons_list(&mut eg, &[unit, sphere, unit]);
        eg.rebuild();
        let items = read_list(&eg, list).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(eg.find(items[1]), eg.find(sphere));
    }

    #[test]
    fn expr_tree_constant_folds_via_analysis() {
        let mut eg = CadGraph::default();
        let e: Expr = "(+ 1 (* 2 3))".parse().unwrap();
        let id = add_expr_tree(&mut eg, &e);
        eg.rebuild();
        assert_eq!(num_of(&eg, id), Some(7.0));
    }

    #[test]
    fn fold_sites_dedup() {
        let (eg, _) = graph(
            "(Union (Fold UnionOp Empty (Cons Unit Nil)) (Fold UnionOp Empty (Cons Unit Nil)))",
        );
        // Hash-consing makes the two identical folds one site.
        assert_eq!(fold_sites(&eg).len(), 1);
    }
}
