//! The e-class analysis carrying concrete values: numbers (with constant
//! folding) and vectors. This is how the e-graph "surfaces" arithmetic to
//! the solvers (paper §4): solver queries read these concrete values
//! rather than walking syntax.

use sz_cad::OrderedF64;
use sz_egraph::{Analysis, DidMerge, EGraph, Id};

use crate::CadLang;

/// Per-class concrete data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CadData {
    /// The numeric value, if this class denotes a known number.
    pub num: Option<f64>,
    /// The concrete vector, if this class denotes a `Vec3` of known
    /// numbers.
    pub vec: Option<[f64; 3]>,
}

/// The Szalinski analysis: constant folding for arithmetic and concrete
/// vector tracking. Merges are tolerant to float noise below `1e-9`
/// (the rewrites compute vector arithmetic in slightly different orders).
#[derive(Debug, Clone, Copy, Default)]
pub struct CadAnalysis;

/// The e-graph type used throughout the synthesizer.
pub type CadGraph = EGraph<CadLang, CadAnalysis>;

fn merge_near(to: &mut Option<f64>, from: Option<f64>) -> DidMerge {
    match (&*to, from) {
        (None, None) => DidMerge(false, false),
        (None, Some(x)) => {
            *to = Some(x);
            DidMerge(true, false)
        }
        (Some(_), None) => DidMerge(false, true),
        (Some(a), Some(b)) => {
            debug_assert!(
                (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                "merged classes disagree on constant value: {a} vs {b}"
            );
            DidMerge(false, false)
        }
    }
}

fn merge_near3(to: &mut Option<[f64; 3]>, from: Option<[f64; 3]>) -> DidMerge {
    match (&*to, from) {
        (None, None) => DidMerge(false, false),
        (None, Some(x)) => {
            *to = Some(x);
            DidMerge(true, false)
        }
        (Some(_), None) => DidMerge(false, true),
        (Some(a), Some(b)) => {
            debug_assert!(
                a.iter()
                    .zip(&b)
                    .all(|(x, y)| (x - y).abs() <= 1e-6 * (1.0 + x.abs())),
                "merged classes disagree on vector value: {a:?} vs {b:?}"
            );
            DidMerge(false, false)
        }
    }
}

impl Analysis<CadLang> for CadAnalysis {
    type Data = CadData;

    fn make(egraph: &EGraph<CadLang, Self>, enode: &CadLang) -> CadData {
        let num = |id: &Id| egraph[*id].data.num;
        let value = (|| match enode {
            CadLang::Num(x) => Some(x.get()),
            CadLang::Add([a, b]) => Some(num(a)? + num(b)?),
            CadLang::Sub([a, b]) => Some(num(a)? - num(b)?),
            CadLang::Mul([a, b]) => Some(num(a)? * num(b)?),
            CadLang::Div([a, b]) => {
                let d = num(b)?;
                if d == 0.0 {
                    None
                } else {
                    Some(num(a)? / d)
                }
            }
            CadLang::Sin([a]) => Some(num(a)?.to_radians().sin()),
            CadLang::Cos([a]) => Some(num(a)?.to_radians().cos()),
            _ => None,
        })();
        let vec = match enode {
            CadLang::Vec3([x, y, z]) => (|| Some([num(x)?, num(y)?, num(z)?]))(),
            _ => None,
        };
        CadData { num: value, vec }
    }

    fn merge(&mut self, to: &mut CadData, from: CadData) -> DidMerge {
        merge_near(&mut to.num, from.num) | merge_near3(&mut to.vec, from.vec)
    }

    fn modify(egraph: &mut EGraph<CadLang, Self>, id: Id) {
        // Constant folding: materialize the literal so patterns that match
        // numbers see it and extraction can choose it.
        if let Some(x) = egraph[id].data.num {
            let added = egraph.add(CadLang::Num(OrderedF64::new(x)));
            egraph.union(id, added);
        }
    }
}

/// Reads the concrete vector of a `Vec3` class, if known.
pub fn vec_of(egraph: &CadGraph, id: Id) -> Option<[f64; 3]> {
    egraph[id].data.vec
}

/// Reads the concrete number of a numeric class, if known.
pub fn num_of(egraph: &CadGraph, id: Id) -> Option<f64> {
    egraph[id].data.num
}

/// Adds a concrete `Vec3` (three literals) to the e-graph.
pub fn add_vec(egraph: &mut CadGraph, v: [f64; 3]) -> Id {
    let x = egraph.add(CadLang::Num(OrderedF64::new(v[0])));
    let y = egraph.add(CadLang::Num(OrderedF64::new(v[1])));
    let z = egraph.add(CadLang::Num(OrderedF64::new(v[2])));
    egraph.add(CadLang::Vec3([x, y, z]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_egraph::RecExpr;

    fn graph(s: &str) -> (CadGraph, Id) {
        let mut eg = CadGraph::default();
        let expr: RecExpr<CadLang> = s.parse().unwrap();
        let id = eg.add_expr(&expr);
        eg.rebuild();
        (eg, id)
    }

    #[test]
    fn constant_folding_arithmetic() {
        let (eg, id) = graph("(+ 1 (* 2 3))");
        assert_eq!(num_of(&eg, id), Some(7.0));
        // The literal 7 was materialized into the class.
        let seven = eg.lookup_expr(&"7".parse().unwrap()).unwrap();
        assert_eq!(eg.find(seven), eg.find(id));
    }

    #[test]
    fn trig_folding_in_degrees() {
        let (eg, id) = graph("(Sin 90)");
        assert!((num_of(&eg, id).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_by_zero_stays_symbolic() {
        let (eg, id) = graph("(/ 1 0)");
        assert_eq!(num_of(&eg, id), None);
    }

    #[test]
    fn vec_analysis() {
        let (eg, id) = graph("(Vec3 1 (+ 1 1) 3)");
        assert_eq!(vec_of(&eg, id), Some([1.0, 2.0, 3.0]));
        let (eg, id) = graph("(Vec3 i 0 0)");
        assert_eq!(vec_of(&eg, id), None);
    }

    #[test]
    fn add_vec_roundtrip() {
        let mut eg = CadGraph::default();
        let id = add_vec(&mut eg, [1.5, -2.0, 0.0]);
        eg.rebuild();
        assert_eq!(vec_of(&eg, id), Some([1.5, -2.0, 0.0]));
    }

    #[test]
    fn symbolic_vec_with_index_has_no_value() {
        let (eg, id) = graph("(Vec3 (* 2 i) 0 0)");
        assert_eq!(vec_of(&eg, id), None);
        assert_eq!(num_of(&eg, id), None);
    }
}
