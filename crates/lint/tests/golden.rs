//! Golden injected-defect fixtures: each class of defect the linters
//! exist to catch is reproduced here and its full report pinned
//! **byte-exact**, in both the text and the JSON rendering, against
//! checked-in fixture files.
//!
//! Rationale: the diagnostic renderings are a machine interface — CI's
//! `lint-gate` job diffs them, and downstream tooling parses the JSON —
//! so any change to codes, locations, messages, or counts must show up
//! as a reviewed fixture diff, never as silent drift.
//!
//! Regenerate after an intentional change with
//! `SZ_REGEN_FIXTURES=1 cargo test -p sz-lint --test golden`.

use std::path::Path;

use sz_egraph::tests_lang::Arith;
use sz_egraph::{InstView, Pattern, ProgramView, Rewrite};
use sz_lint::{lint_cad, lint_ruleset, verify_program, PatternShape, Report};

/// Compares `got` against the named fixture byte-exact (or rewrites the
/// fixture under `SZ_REGEN_FIXTURES=1`).
fn check_fixture(name: &str, got: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/{name}"));
    if std::env::var_os("SZ_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("fixture {name} missing ({e}); regenerate with SZ_REGEN_FIXTURES=1")
    });
    assert_eq!(
        got, want,
        "{name} drifted from its fixture; if the change is intentional, \
         regenerate with SZ_REGEN_FIXTURES=1 cargo test -p sz-lint --test golden"
    );
}

/// Pins one report's text and JSON renderings under a fixture stem.
fn check_report(stem: &str, report: &Report) {
    check_fixture(&format!("{stem}.txt"), &report.render_text());
    check_fixture(&format!("{stem}.json"), &format!("{}\n", report.to_json()));
}

#[test]
fn unbound_rhs_variable() {
    // The defect `Rewrite::new` rejects at construction, injected through
    // the `new_unchecked` escape hatch: ?c appears on the RHS only
    // (SZL001 deny) and the dropped ?b is reported as unused (SZL002).
    let rules = vec![Rewrite::<Arith, ()>::new_unchecked(
        "bad-unbound",
        "(+ ?a ?b)".parse().unwrap(),
        "(* ?a ?c)".parse::<Pattern<Arith>>().unwrap(),
    )];
    let report = lint_ruleset(&rules);
    assert_eq!(report.deny_count(), 1);
    check_report("unbound_rhs", &report);
}

#[test]
fn duplicate_rules() {
    // `twin` repeats `orig` verbatim (SZL003); `renamed` repeats it up to
    // α-renaming (SZL004 against each of the first two). All three are
    // self-inverse commutativity rules (SZL005).
    let rule = |name: &str, lhs: &str, rhs: &str| -> Rewrite<Arith, ()> {
        Rewrite::parse(name, lhs, rhs).unwrap()
    };
    let rules = vec![
        rule("orig", "(+ ?a ?b)", "(+ ?b ?a)"),
        rule("twin", "(+ ?a ?b)", "(+ ?b ?a)"),
        rule("renamed", "(+ ?x ?y)", "(+ ?y ?x)"),
    ];
    let report = lint_ruleset(&rules);
    assert_eq!(report.warn_count(), 3);
    check_report("duplicate_rules", &report);
}

#[test]
fn corrupted_vm_program() {
    // A hand-corrupted program view for the pattern `(+ ?a ?b)`: the
    // bind reads an undefined register and clobbers its own input
    // (SZL101 twice), a lookup indexes an empty ground table (SZL102),
    // the template maps ?b to a dead register (SZL103), and the
    // instruction mix disagrees with the pattern (SZL104).
    let pattern: Pattern<Arith> = "(+ ?a ?b)".parse().unwrap();
    let shape = PatternShape::of(&pattern);
    let view = ProgramView {
        insts: vec![
            InstView::Bind {
                op: "+".into(),
                arity: 2,
                i: 3,
                out: 1,
            },
            InstView::Lookup { ground: 0, i: 1 },
        ],
        ground: vec![],
        subst: vec![("?a".into(), 1), ("?b".into(), 9)],
        root_op: Some("+".into()),
    };
    let report = verify_program("corrupted", &view, Some(&shape));
    assert!(report.deny_count() >= 4, "{}", report.render_text());
    check_report("corrupted_vm", &report);
}

#[test]
fn zero_scale_input() {
    // A corpus input whose Scale collapses geometry onto a plane: SZL202
    // deny, plus an info finding riding along in the same tree (an
    // identity translate wrapping the second operand).
    let cad: sz_cad::Cad = "(Union (Scale 0 2 2 Unit) (Translate 0 0 0 Empty))"
        .parse()
        .unwrap();
    let report = lint_cad("pancake", &cad);
    assert_eq!(report.deny_count(), 1);
    check_report("zero_scale", &report);
}
