//! # sz-lint: static analysis for the synthesis stack
//!
//! Three analyzers, one [`Diagnostic`] vocabulary:
//!
//! 1. **Rule-set analysis** ([`lint_ruleset`]) over any
//!    `&[Rewrite<L, N>]` — binding soundness, unused variables, exact and
//!    α-renamed duplicates, inverse pairs, expansivity. Works through the
//!    introspection surface `sz-egraph` exposes
//!    ([`Rewrite::rhs_pattern`](sz_egraph::Rewrite::rhs_pattern),
//!    [`Rewrite::compiled`](sz_egraph::Rewrite::compiled)); dynamic Rust
//!    appliers are treated as opaque.
//! 2. **VM program verification** ([`verify_program`]) — an abstract
//!    interpreter over the compiled e-matcher's Bind/Compare/Lookup
//!    stream ([`ProgramView`](sz_egraph::ProgramView)), reconciled
//!    against the source pattern's [`PatternShape`]. The static
//!    complement of the dynamic VM-vs-naive differential oracle: it
//!    catches pattern-compiler bugs without running an e-graph.
//! 3. **CAD input linting** ([`lint_cad`]) over parsed
//!    [`Cad`](sz_cad::Cad) programs — degenerate transforms, empty
//!    boolean operands, ill-sorted terms — run by `szb lint` / `szlint`
//!    before a corpus enters the batch pipeline.
//!
//! Every finding carries a stable code:
//!
//! | code | severity | meaning |
//! |--------|------|---------------------------------------------------|
//! | SZL001 | deny | RHS pattern variable unbound by the LHS            |
//! | SZL002 | warn | LHS variable never read by the RHS                 |
//! | SZL003 | warn | exact duplicate rule                               |
//! | SZL004 | warn | duplicate rule up to variable renaming             |
//! | SZL005 | info | inverse rule pair (incl. self-inverse comm rules)  |
//! | SZL006 | info | expansive rule (RHS strictly larger than LHS)      |
//! | SZL101 | deny | VM register used before definition / clobbered     |
//! | SZL102 | deny | VM ground-table index out of range                 |
//! | SZL103 | deny | VM substitution maps a variable badly              |
//! | SZL104 | deny | VM program disagrees with its source pattern       |
//! | SZL200 | deny | corpus file failed to parse (emitted by `sz-batch`)|
//! | SZL201 | deny | non-finite (`NaN`/`inf`) numeric literal           |
//! | SZL202 | deny | `Scale` with a zero component                      |
//! | SZL203 | warn | `Empty` operand of `Union`/`Inter`, `Fold` of `Nil`|
//! | SZL204 | info | identity transform no-op                           |
//! | SZL205 | warn | non-positive / fractional `Repeat`/`MapIdx` count  |
//! | SZL206 | deny | ill-sorted term (solid/list/function confusion)    |
//!
//! Severities gate differently: **deny** findings fail `szlint` and turn
//! into a structured `SynthError` inside `szalinski::Synthesizer`;
//! **warn**/**info** are reported but never fail a build. Both renderings
//! ([`Report::render_text`], [`Report::to_json`]) are deterministic and
//! pinned byte-exact by golden fixtures in `tests/golden.rs`.
//!
//! ## Example
//!
//! ```
//! use sz_egraph::{Rewrite, tests_lang::Arith};
//! use sz_lint::lint_ruleset;
//!
//! let rules: Vec<Rewrite<Arith, ()>> = vec![
//!     Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
//! ];
//! let report = lint_ruleset(&rules);
//! assert!(report.is_clean());
//! // Commutativity is its own inverse — flagged info-level for audit.
//! assert_eq!(report.info_count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cad;
mod diag;
mod program;
mod ruleset;

pub use cad::lint_cad;
pub use diag::{Diagnostic, Report, Severity};
pub use program::{verify_program, PatternShape};
pub use ruleset::lint_ruleset;
