//! Abstract interpretation of compiled e-matching programs.
//!
//! The VM in `sz_egraph::machine` executes Bind/Compare/Lookup over a
//! register file of e-class ids with **truncate-on-Bind** semantics: a
//! `Bind { i, out, arity }` truncates the file to `out` registers, then
//! appends the candidate's `arity` children — so every register at index
//! `≥ out + arity` becomes undefined, and `i` must lie strictly below
//! `out` or the bind would erase its own input. This module replays an
//! instruction stream against that abstract machine (tracking only *how
//! many* registers are defined, never their values) and reconciles the
//! result against the source pattern. It is the static complement of the
//! dynamic VM-vs-naive differential oracle (`tests/ematch_differential.rs`):
//! the oracle catches miscompilations by running both matchers on concrete
//! e-graphs; this verifier catches them by construction, without a graph.

use sz_egraph::{ENodeOrVar, Id, InstView, Language, Pattern, ProgramView, RecExpr};

use crate::diag::{Diagnostic, Report, Severity};

/// The instruction-level shape the compiler must have produced for a
/// pattern: its variables (first-occurrence order, rendered with the `?`
/// sigil), root operator, and expected instruction counts.
///
/// Computed by re-walking the pattern AST with the compiler's own
/// traversal (pre-order, ground subtrees collapsed to one `Lookup`,
/// repeated variables to one `Compare` each) — but **without** running the
/// compiler, so the two can disagree when one of them is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternShape {
    /// Pattern variables in first-occurrence order, e.g. `["?a", "?b"]`.
    pub vars: Vec<String>,
    /// The root operator name, or `None` for a bare-variable pattern.
    pub root_op: Option<String>,
    /// Expected number of `Bind` instructions: e-node positions whose
    /// subtree contains a variable.
    pub binds: usize,
    /// Expected number of `Lookup` instructions: maximal variable-free
    /// subtrees.
    pub lookups: usize,
    /// Expected number of `Compare` instructions: repeat occurrences of
    /// already-seen variables.
    pub compares: usize,
}

impl PatternShape {
    /// Derives the expected shape from a pattern.
    pub fn of<L: Language>(pattern: &Pattern<L>) -> Self {
        let ast = pattern.ast();
        let mut has_var = vec![false; ast.len()];
        for (id, node) in ast.iter() {
            has_var[usize::from(id)] = match node {
                ENodeOrVar::Var(_) => true,
                ENodeOrVar::ENode(n) => n.children().iter().any(|c| has_var[usize::from(*c)]),
            };
        }
        let mut shape = PatternShape {
            vars: Vec::new(),
            root_op: match &ast[ast.root()] {
                ENodeOrVar::ENode(n) => Some(n.op_name()),
                ENodeOrVar::Var(_) => None,
            },
            binds: 0,
            lookups: 0,
            compares: 0,
        };
        shape.walk(ast, &has_var, ast.root());
        shape
    }

    fn walk<L: Language>(&mut self, ast: &RecExpr<ENodeOrVar<L>>, has_var: &[bool], id: Id) {
        match &ast[id] {
            ENodeOrVar::Var(v) => {
                let name = v.to_string();
                if self.vars.contains(&name) {
                    self.compares += 1;
                } else {
                    self.vars.push(name);
                }
            }
            ENodeOrVar::ENode(_) if !has_var[usize::from(id)] => self.lookups += 1,
            ENodeOrVar::ENode(n) => {
                self.binds += 1;
                for &c in n.children() {
                    self.walk(ast, has_var, c);
                }
            }
        }
    }
}

/// Verifies one program view, optionally reconciling it against the shape
/// of the pattern it claims to implement.
///
/// Findings are anchored at `rule:<name>/vm@pc<k>` (instruction-level) or
/// `rule:<name>/vm` (template/shape-level):
///
/// * **SZL101** (deny) — register used before definition, output range
///   overlapping an input, or output placed past the live file;
/// * **SZL102** (deny) — `Lookup` ground index outside the ground table;
/// * **SZL103** (deny) — substitution template maps a variable to an
///   undefined register, or maps the same variable twice;
/// * **SZL104** (deny) — program disagrees with the pattern: different
///   variables, different root operator, or different instruction counts.
pub fn verify_program(name: &str, view: &ProgramView, shape: Option<&PatternShape>) -> Report {
    let mut report = Report::new();
    let loc = |pc: Option<usize>| match pc {
        Some(pc) => format!("rule:{name}/vm@pc{pc}"),
        None => format!("rule:{name}/vm"),
    };

    // Abstract replay: `defined` = number of live registers. Register 0
    // (the candidate root) is always defined.
    let mut defined: usize = 1;
    let mut binds = 0usize;
    let mut compares = 0usize;
    let mut lookups = 0usize;
    for (pc, inst) in view.insts.iter().enumerate() {
        match inst {
            InstView::Bind { op, arity, i, out } => {
                binds += 1;
                if *i >= defined {
                    report.push(Diagnostic::new(
                        Severity::Deny,
                        "SZL101",
                        loc(Some(pc)),
                        format!(
                            "bind `{op}` reads register r{i} but only r0..r{defined} are defined"
                        ),
                    ));
                }
                if *i >= *out {
                    report.push(Diagnostic::new(
                        Severity::Deny,
                        "SZL101",
                        loc(Some(pc)),
                        format!("bind `{op}` writes r{out}.. which clobbers its own input r{i}"),
                    ));
                }
                if *out > defined {
                    report.push(Diagnostic::new(
                        Severity::Deny,
                        "SZL101",
                        loc(Some(pc)),
                        format!(
                            "bind `{op}` targets r{out} past the live file (r0..r{defined}); children would land misaligned"
                        ),
                    ));
                }
                defined = out + arity;
            }
            InstView::Compare { i, j } => {
                compares += 1;
                for r in [i, j] {
                    if *r >= defined {
                        report.push(Diagnostic::new(
                            Severity::Deny,
                            "SZL101",
                            loc(Some(pc)),
                            format!(
                                "compare reads register r{r} but only r0..r{defined} are defined"
                            ),
                        ));
                    }
                }
            }
            InstView::Lookup { ground, i } => {
                lookups += 1;
                if *i >= defined {
                    report.push(Diagnostic::new(
                        Severity::Deny,
                        "SZL101",
                        loc(Some(pc)),
                        format!("lookup reads register r{i} but only r0..r{defined} are defined"),
                    ));
                }
                if *ground >= view.ground.len() {
                    report.push(Diagnostic::new(
                        Severity::Deny,
                        "SZL102",
                        loc(Some(pc)),
                        format!(
                            "ground index {ground} out of range (table has {} entries)",
                            view.ground.len()
                        ),
                    ));
                }
            }
        }
    }

    // Substitution template: every variable maps to exactly one register
    // that is still defined at the accept state.
    let mut seen: Vec<&str> = Vec::new();
    for (var, reg) in &view.subst {
        if seen.contains(&var.as_str()) {
            report.push(Diagnostic::new(
                Severity::Deny,
                "SZL103",
                loc(None),
                format!("variable {var} is mapped to more than one output register"),
            ));
        } else {
            seen.push(var);
        }
        if *reg >= defined {
            report.push(Diagnostic::new(
                Severity::Deny,
                "SZL103",
                loc(None),
                format!(
                    "variable {var} is mapped to register r{reg}, undefined at the accept state (r0..r{defined})"
                ),
            ));
        }
    }

    // Reconcile against the pattern AST.
    if let Some(shape) = shape {
        let view_vars: Vec<&str> = view.subst.iter().map(|(v, _)| v.as_str()).collect();
        let shape_vars: Vec<&str> = shape.vars.iter().map(String::as_str).collect();
        if view_vars != shape_vars {
            report.push(Diagnostic::new(
                Severity::Deny,
                "SZL104",
                loc(None),
                format!(
                    "program binds [{}] but the pattern has [{}]",
                    view_vars.join(", "),
                    shape_vars.join(", ")
                ),
            ));
        }
        if view.root_op != shape.root_op {
            report.push(Diagnostic::new(
                Severity::Deny,
                "SZL104",
                loc(None),
                format!(
                    "program root operator {:?} disagrees with the pattern's {:?}",
                    view.root_op, shape.root_op
                ),
            ));
        }
        if (binds, compares, lookups) != (shape.binds, shape.compares, shape.lookups) {
            report.push(Diagnostic::new(
                Severity::Deny,
                "SZL104",
                loc(None),
                format!(
                    "instruction mix bind/compare/lookup = {binds}/{compares}/{lookups} but the pattern requires {}/{}/{}",
                    shape.binds, shape.compares, shape.lookups
                ),
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_egraph::tests_lang::Arith;
    use sz_egraph::CompiledPattern;

    fn verify_pattern(pat: &str) -> Report {
        let pattern: Pattern<Arith> = pat.parse().unwrap();
        let compiled = CompiledPattern::compile(pattern.clone());
        let shape = PatternShape::of(&pattern);
        verify_program("t", &compiled.program().view(), Some(&shape))
    }

    #[test]
    fn real_programs_verify_clean() {
        for pat in [
            "?x",
            "(+ ?a ?b)",
            "(+ ?a ?a)",
            "(+ 1 2)",
            "(* 2 ?a)",
            "(+ (* ?a ?b) (* ?a ?c))",
            "(+ (+ ?a ?b) (+ ?a ?b))",
        ] {
            let report = verify_pattern(pat);
            assert!(
                report.diagnostics.is_empty(),
                "`{pat}`:\n{}",
                report.render_text()
            );
        }
    }

    #[test]
    fn shape_counts_match_compiler() {
        let shape = PatternShape::of(&"(+ ?a (* ?b 2))".parse::<Pattern<Arith>>().unwrap());
        assert_eq!(shape.vars, ["?a", "?b"]);
        assert_eq!(shape.root_op.as_deref(), Some("+"));
        assert_eq!((shape.binds, shape.compares, shape.lookups), (2, 0, 1));
    }

    #[test]
    fn use_before_def_is_deny() {
        let view = ProgramView {
            insts: vec![InstView::Bind {
                op: "+".into(),
                arity: 2,
                i: 3, // undefined: only r0 exists
                out: 1,
            }],
            ground: vec![],
            subst: vec![("?a".into(), 1), ("?b".into(), 2)],
            root_op: Some("+".into()),
        };
        let report = verify_program("bad", &view, None);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "SZL101" && d.location == "rule:bad/vm@pc0"));
        // i >= out also fires the clobber check.
        assert_eq!(report.deny_count(), 2);
    }

    #[test]
    fn ground_index_out_of_range_is_deny() {
        let view = ProgramView {
            insts: vec![InstView::Lookup { ground: 0, i: 0 }],
            ground: vec![],
            subst: vec![],
            root_op: Some("+".into()),
        };
        let report = verify_program("bad", &view, None);
        assert_eq!(report.deny_count(), 1);
        assert_eq!(report.diagnostics[0].code, "SZL102");
    }

    #[test]
    fn bad_subst_template_is_deny() {
        let view = ProgramView {
            insts: vec![InstView::Bind {
                op: "+".into(),
                arity: 2,
                i: 0,
                out: 1,
            }],
            ground: vec![],
            subst: vec![("?a".into(), 1), ("?a".into(), 2), ("?b".into(), 9)],
            root_op: Some("+".into()),
        };
        let report = verify_program("bad", &view, None);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["SZL103", "SZL103"]);
    }

    #[test]
    fn shape_mismatch_is_deny() {
        let pattern: Pattern<Arith> = "(+ ?a ?b)".parse().unwrap();
        let shape = PatternShape::of(&pattern);
        // A program for a different pattern entirely.
        let view = ProgramView {
            insts: vec![InstView::Bind {
                op: "*".into(),
                arity: 2,
                i: 0,
                out: 1,
            }],
            ground: vec![],
            subst: vec![("?a".into(), 1)],
            root_op: Some("*".into()),
        };
        let report = verify_program("bad", &view, Some(&shape));
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["SZL104", "SZL104"], "{}", report.render_text());
    }
}
