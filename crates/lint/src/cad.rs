//! Linting parsed [`Cad`] programs: degenerate transforms, empty boolean
//! operands, ill-sorted terms.
//!
//! The CAD s-expression parser is deliberately permissive — `NaN`, `inf`,
//! zero scales, and solid/list confusions all parse — because the paper's
//! corpus conversion must accept whatever the `.scad` frontend produced.
//! This pass runs between parsing and synthesis (`szb lint`, `szlint`) so
//! degenerate inputs are rejected with a location instead of producing
//! degenerate geometry or an evaluator panic mid-batch.

use sz_cad::{AffineKind, BoolOp, Cad, Expr, V3};

use crate::diag::{Diagnostic, Report, Severity};

/// The sort of a [`Cad`] term: the grammar shares one type between solids
/// and lists, so the linter re-derives which one each node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sort {
    Solid,
    List,
    Fun,
}

impl Sort {
    fn name(self) -> &'static str {
        match self {
            Sort::Solid => "solid",
            Sort::List => "list",
            Sort::Fun => "function",
        }
    }
}

/// The sort a node constructs, independent of its children.
fn sort_of(cad: &Cad) -> Sort {
    match cad {
        Cad::Empty
        | Cad::Unit
        | Cad::Cylinder
        | Cad::Sphere
        | Cad::Hexagon
        | Cad::External(_)
        | Cad::Param
        | Cad::Affine(..)
        | Cad::Binop(..)
        | Cad::Fold(..) => Sort::Solid,
        Cad::Nil
        | Cad::Cons(..)
        | Cad::Concat(..)
        | Cad::Repeat(..)
        | Cad::Mapi(..)
        | Cad::MapIdx(..) => Sort::List,
        Cad::Fun(_) => Sort::Fun,
    }
}

struct CadLinter<'a> {
    name: &'a str,
    path: Vec<usize>,
    report: Report,
}

impl CadLinter<'_> {
    fn location(&self) -> String {
        if self.path.is_empty() {
            format!("input:{}", self.name)
        } else {
            let dotted: Vec<String> = self.path.iter().map(usize::to_string).collect();
            format!("input:{}@{}", self.name, dotted.join("."))
        }
    }

    fn push(&mut self, severity: Severity, code: &'static str, message: String) {
        let loc = self.location();
        self.report
            .push(Diagnostic::new(severity, code, loc, message));
    }

    /// Any non-finite literal anywhere in an expression tree is SZL201.
    fn check_expr(&mut self, e: &Expr, ctx: &str) {
        match e {
            Expr::Num(x) => {
                if !x.get().is_finite() {
                    self.push(
                        Severity::Deny,
                        "SZL201",
                        format!("non-finite literal {} in {ctx}", x.get()),
                    );
                }
            }
            Expr::Idx(_) => {}
            Expr::Sin(a) | Expr::Cos(a) => self.check_expr(a, ctx),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                self.check_expr(a, ctx);
                self.check_expr(b, ctx);
            }
        }
    }

    fn check_v3(&mut self, v: &V3, ctx: &str) {
        for c in v.components() {
            self.check_expr(c, ctx);
        }
    }

    fn require_sort(&mut self, child: &Cad, expected: Sort, ctx: &str) {
        let actual = sort_of(child);
        if actual != expected {
            self.push(
                Severity::Deny,
                "SZL206",
                format!(
                    "{ctx} expects a {}, found a {}",
                    expected.name(),
                    actual.name()
                ),
            );
        }
    }

    fn check_count(&mut self, e: &Expr, ctx: &str) {
        self.check_expr(e, ctx);
        if let Some(n) = e.as_num() {
            if n.is_finite() && (n <= 0.0 || n.fract() != 0.0) {
                self.push(
                    Severity::Warn,
                    "SZL205",
                    format!("degenerate {ctx} {n} (expected a positive integer)"),
                );
            }
        }
    }

    fn lint(&mut self, cad: &Cad) {
        match cad {
            Cad::Empty
            | Cad::Unit
            | Cad::Cylinder
            | Cad::Sphere
            | Cad::Hexagon
            | Cad::External(_)
            | Cad::Nil
            | Cad::Param => {}
            Cad::Affine(kind, v, child) => {
                let ctx = format!("{} vector", kind.name());
                self.check_v3(v, &ctx);
                if *kind == AffineKind::Scale {
                    if let Some(nums) = v.as_nums() {
                        if nums.contains(&0.0) {
                            self.push(
                                Severity::Deny,
                                "SZL202",
                                format!(
                                    "zero scale component [{}, {}, {}] collapses the geometry",
                                    nums[0], nums[1], nums[2]
                                ),
                            );
                        }
                    }
                }
                if v.as_nums() == Some(kind.identity()) {
                    self.push(
                        Severity::Info,
                        "SZL204",
                        format!("identity {} is a no-op", kind.name()),
                    );
                }
                self.require_sort(child, Sort::Solid, kind.name());
                self.recurse(child, 0);
            }
            Cad::Binop(op, a, b) => {
                if matches!(op, BoolOp::Union | BoolOp::Inter) {
                    for (idx, operand) in [(0usize, a), (1usize, b)] {
                        if **operand == Cad::Empty {
                            self.push(
                                Severity::Warn,
                                "SZL203",
                                format!("Empty operand {idx} of {}", op.name()),
                            );
                        }
                    }
                }
                self.require_sort(a, Sort::Solid, op.name());
                self.require_sort(b, Sort::Solid, op.name());
                self.recurse(a, 0);
                self.recurse(b, 1);
            }
            Cad::Cons(head, tail) => {
                self.require_sort(head, Sort::Solid, "Cons head");
                self.require_sort(tail, Sort::List, "Cons tail");
                self.recurse(head, 0);
                self.recurse(tail, 1);
            }
            Cad::Concat(a, b) => {
                self.require_sort(a, Sort::List, "Concat operand");
                self.require_sort(b, Sort::List, "Concat operand");
                self.recurse(a, 0);
                self.recurse(b, 1);
            }
            Cad::Repeat(child, n) => {
                self.check_count(n, "Repeat count");
                self.require_sort(child, Sort::Solid, "Repeat element");
                self.recurse(child, 0);
            }
            Cad::Mapi(fun, list) => {
                self.require_sort(fun, Sort::Fun, "Mapi function");
                self.require_sort(list, Sort::List, "Mapi list");
                self.recurse(fun, 0);
                self.recurse(list, 1);
            }
            Cad::MapIdx(bounds, body) => {
                if bounds.is_empty() || bounds.len() > 3 {
                    self.push(
                        Severity::Deny,
                        "SZL206",
                        format!("MapIdx has {} bounds (expected 1-3)", bounds.len()),
                    );
                }
                for b in bounds {
                    self.check_count(b, "MapIdx bound");
                }
                self.require_sort(body, Sort::Solid, "MapIdx body");
                self.recurse(body, 0);
            }
            Cad::Fun(body) => {
                self.require_sort(body, Sort::Solid, "Fun body");
                self.recurse(body, 0);
            }
            Cad::Fold(op, init, list) => {
                if **list == Cad::Nil {
                    self.push(
                        Severity::Warn,
                        "SZL203",
                        format!("Fold {} over the empty list", op.name()),
                    );
                }
                self.require_sort(init, Sort::Solid, "Fold init");
                self.require_sort(list, Sort::List, "Fold list");
                self.recurse(init, 0);
                self.recurse(list, 1);
            }
        }
    }

    fn recurse(&mut self, child: &Cad, idx: usize) {
        self.path.push(idx);
        self.lint(child);
        self.path.pop();
    }
}

/// Lints one parsed CAD program.
///
/// `name` anchors locations (`input:<name>@<child-index-path>`); for a
/// corpus file it is typically the file name. Findings, in pre-order:
///
/// * **SZL201** (deny) — non-finite (`NaN`/`inf`) numeric literal;
/// * **SZL202** (deny) — `Scale` with a zero component;
/// * **SZL203** (warn) — `Empty` operand of `Union`/`Inter`, or `Fold`
///   over the empty list;
/// * **SZL204** (info) — identity transform no-op;
/// * **SZL205** (warn) — non-positive or fractional constant
///   `Repeat`/`MapIdx` count;
/// * **SZL206** (deny) — ill-sorted term (a list where a solid is
///   required, etc.) or malformed `MapIdx` arity.
pub fn lint_cad(name: &str, cad: &Cad) -> Report {
    let mut linter = CadLinter {
        name,
        path: Vec::new(),
        report: Report::new(),
    };
    linter.lint(cad);
    linter.report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_models_have_no_findings() {
        let cad = Cad::union(
            Cad::translate(1.0, 2.0, 3.0, Cad::Unit),
            Cad::scale(2.0, 2.0, 2.0, Cad::Sphere),
        );
        let report = lint_cad("m", &cad);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn zero_scale_is_deny() {
        let cad = Cad::scale(1.0, 0.0, 1.0, Cad::Unit);
        let report = lint_cad("m", &cad);
        assert_eq!(report.deny_count(), 1);
        assert_eq!(report.diagnostics[0].code, "SZL202");
        assert_eq!(report.diagnostics[0].location, "input:m");
    }

    #[test]
    fn non_finite_literal_is_deny() {
        let cad = Cad::translate(f64::NAN, 0.0, 0.0, Cad::Unit);
        let report = lint_cad("m", &cad);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "SZL201" && d.severity == Severity::Deny));
        let cad = Cad::scale(f64::INFINITY, 1.0, 1.0, Cad::Unit);
        assert!(!lint_cad("m", &cad).is_clean());
    }

    #[test]
    fn empty_union_operand_is_warn() {
        let cad = Cad::union(Cad::Empty, Cad::Unit);
        let report = lint_cad("m", &cad);
        assert!(report.is_clean());
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.diagnostics[0].code, "SZL203");
        // Diff with an Empty minuend is meaningful, not flagged.
        let diff = Cad::diff(Cad::Empty, Cad::Unit);
        assert!(lint_cad("m", &diff).diagnostics.is_empty());
    }

    #[test]
    fn identity_transform_is_info() {
        let cad = Cad::translate(0.0, 0.0, 0.0, Cad::Unit);
        let report = lint_cad("m", &cad);
        assert_eq!(report.info_count(), 1);
        assert_eq!(report.diagnostics[0].code, "SZL204");
        let cad = Cad::scale(1.0, 1.0, 1.0, Cad::Unit);
        assert_eq!(lint_cad("m", &cad).info_count(), 1);
    }

    #[test]
    fn degenerate_repeat_count_is_warn() {
        let report = lint_cad("m", &Cad::Repeat(Box::new(Cad::Unit), Expr::num(0.0)));
        assert!(report.diagnostics.iter().any(|d| d.code == "SZL205"));
        let report = lint_cad("m", &Cad::Repeat(Box::new(Cad::Unit), Expr::num(2.5)));
        assert!(report.diagnostics.iter().any(|d| d.code == "SZL205"));
        let report = lint_cad("m", &Cad::repeat(Cad::Unit, 4));
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn ill_sorted_terms_are_deny() {
        // A list where a solid is required.
        let cad = Cad::union(Cad::Nil, Cad::Unit);
        let report = lint_cad("m", &cad);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "SZL206" && d.message.contains("Union")));
        // A solid where a list is required.
        let cad = Cad::fold(BoolOp::Union, Cad::Empty, Cad::Unit);
        assert!(!lint_cad("m", &cad).is_clean());
    }

    #[test]
    fn locations_use_child_index_paths() {
        let cad = Cad::union(Cad::Unit, Cad::scale(0.0, 1.0, 1.0, Cad::Sphere));
        let report = lint_cad("gear", &cad);
        assert_eq!(report.deny_count(), 1);
        assert_eq!(report.diagnostics[0].location, "input:gear@1");
    }

    #[test]
    fn nested_loop_bodies_are_linted() {
        let body = Cad::translate(f64::NAN, 0.0, 0.0, Cad::Param);
        let cad = Cad::mapi(body, Cad::list(vec![Cad::Unit]));
        let report = lint_cad("m", &cad);
        assert!(!report.is_clean(), "{}", report.render_text());
    }
}
