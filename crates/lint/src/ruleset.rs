//! Rule-set analysis: binding soundness, duplicate/inverse detection, and
//! expansivity classification over any `&[Rewrite]`.
//!
//! Works through the introspection surface `sz-egraph` exposes on
//! [`Rewrite`]: the LHS pattern is always available
//! ([`Rewrite::searcher`]); the RHS pattern and variable set are available
//! for purely syntactic rules ([`Rewrite::rhs_pattern`],
//! [`Rewrite::applier_vars`]) and `None` for dynamic Rust appliers, which
//! are treated as opaque (no duplicate/inverse/expansivity claims are made
//! about them). Compiled e-matching programs are verified per rule by the
//! [`program`](crate::program) module.

use sz_egraph::{Analysis, ENodeOrVar, Id, Language, Pattern, RecExpr, Rewrite, Var};

use crate::diag::{Diagnostic, Report, Severity};
use crate::program::{verify_program, PatternShape};

/// Renders `ast[id]` as an s-expression with variables renamed to
/// `?v0, ?v1, …` in first-occurrence order (`map` carries the occurrence
/// order across calls, so LHS and RHS canonicalize jointly).
fn canon_node<L: Language>(ast: &RecExpr<ENodeOrVar<L>>, id: Id, map: &mut Vec<Var>) -> String {
    match &ast[id] {
        ENodeOrVar::Var(v) => {
            let pos = match map.iter().position(|u| u == v) {
                Some(pos) => pos,
                None => {
                    map.push(*v);
                    map.len() - 1
                }
            };
            format!("?v{pos}")
        }
        ENodeOrVar::ENode(n) => {
            if n.children().is_empty() {
                n.op_name()
            } else {
                let kids: Vec<String> = n
                    .children()
                    .iter()
                    .map(|&c| canon_node(ast, c, map))
                    .collect();
                format!("({} {})", n.op_name(), kids.join(" "))
            }
        }
    }
}

/// The α-canonical rendering of a `lhs => rhs` pair: variables are renamed
/// by first occurrence across the LHS then the RHS, so two rules that
/// differ only in variable names canonicalize identically.
fn canon_pair<L: Language>(lhs: &Pattern<L>, rhs: &Pattern<L>) -> String {
    let mut map = Vec::new();
    let l = canon_node(lhs.ast(), lhs.ast().root(), &mut map);
    let r = canon_node(rhs.ast(), rhs.ast().root(), &mut map);
    format!("{l} => {r}")
}

/// Statically analyzes a rule set, returning every finding in rule order.
///
/// Per rule: **SZL001** (deny) RHS variable unbound by the LHS — the
/// apply-time panic [`Rewrite::new`] now rejects, still reachable through
/// `new_unchecked`; **SZL002** (warn) LHS variable the RHS never reads;
/// **SZL006** (info) expansive rule (RHS strictly larger than LHS, so
/// growth is throttled only by the backoff scheduler); plus the full VM
/// program verification of [`verify_program`] when the rule carries a
/// compiled program. Across rules: **SZL003** (warn) exact duplicates,
/// **SZL004** (warn) α-renamed duplicates, **SZL005** (info) inverse pairs
/// `A.lhs ≡ B.rhs ∧ A.rhs ≡ B.lhs` modulo renaming (a self-inverse rule —
/// commutativity — pairs with itself).
pub fn lint_ruleset<L: Language, N: Analysis<L>>(rules: &[Rewrite<L, N>]) -> Report {
    let mut report = Report::new();

    // Per-rule checks, in rule order.
    for rule in rules {
        let loc = format!("rule:{}", rule.name());
        let lhs_vars = rule.searcher().vars();
        if let Some(rhs_vars) = rule.applier_vars() {
            for v in &rhs_vars {
                if !lhs_vars.contains(v) {
                    report.push(Diagnostic::new(
                        Severity::Deny,
                        "SZL001",
                        loc.clone(),
                        format!(
                            "rhs variable {v} is not bound by the lhs; applying this rule panics"
                        ),
                    ));
                }
            }
            for v in &lhs_vars {
                if !rhs_vars.contains(v) {
                    report.push(Diagnostic::new(
                        Severity::Warn,
                        "SZL002",
                        loc.clone(),
                        format!("lhs variable {v} is never read by the rhs"),
                    ));
                }
            }
        }
        if let Some(rhs) = rule.rhs_pattern() {
            let l = rule.searcher().ast().len();
            let r = rhs.ast().len();
            if r > l {
                report.push(Diagnostic::new(
                    Severity::Info,
                    "SZL006",
                    loc.clone(),
                    format!(
                        "expansive: rhs has {r} nodes vs {l} on the lhs; growth is bounded only by the scheduler"
                    ),
                ));
            }
        }
        if let Some(compiled) = rule.compiled() {
            let shape = PatternShape::of(compiled.pattern());
            report.extend(verify_program(
                rule.name(),
                &compiled.program().view(),
                Some(&shape),
            ));
        }
    }

    // Cross-rule checks over the syntactic subset.
    let syntactic: Vec<(usize, String, String, String)> = rules
        .iter()
        .enumerate()
        .filter_map(|(i, rule)| {
            let rhs = rule.rhs_pattern()?;
            Some((
                i,
                rule.name().to_owned(),
                format!("{} => {}", rule.searcher(), rhs),
                canon_pair(rule.searcher(), rhs),
            ))
        })
        .collect();

    for a in 0..syntactic.len() {
        let (_, name_a, exact_a, canon_a) = &syntactic[a];
        for (_, name_b, exact_b, canon_b) in &syntactic[a + 1..] {
            if exact_a == exact_b {
                report.push(Diagnostic::new(
                    Severity::Warn,
                    "SZL003",
                    format!("rule:{name_b}"),
                    format!("exact duplicate of rule `{name_a}` ({exact_a})"),
                ));
            } else if canon_a == canon_b {
                report.push(Diagnostic::new(
                    Severity::Warn,
                    "SZL004",
                    format!("rule:{name_b}"),
                    format!("duplicate of rule `{name_a}` up to variable renaming"),
                ));
            }
        }
    }

    // Inverse pairs: compare A's canon against B canonicalized in reverse
    // (rhs first), including A against itself (self-inverse comm rules).
    for a in 0..syntactic.len() {
        let (_, name_a, _, canon_a) = &syntactic[a];
        for (ib, name_b, _, _) in &syntactic[a..] {
            let rule_b = &rules[*ib];
            let rhs_b = rule_b.rhs_pattern().expect("rule is syntactic");
            let mut map = Vec::new();
            let r = canon_node(rhs_b.ast(), rhs_b.ast().root(), &mut map);
            let l = canon_node(
                rule_b.searcher().ast(),
                rule_b.searcher().ast().root(),
                &mut map,
            );
            let reversed_b = format!("{r} => {l}");
            if *canon_a == reversed_b {
                let msg = if name_a == name_b {
                    "self-inverse: lhs and rhs are mirror images (commutativity-style rule)"
                        .to_owned()
                } else {
                    format!("forms an inverse pair with rule `{name_b}`")
                };
                report.push(Diagnostic::new(
                    Severity::Info,
                    "SZL005",
                    format!("rule:{name_a}"),
                    msg,
                ));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_egraph::tests_lang::Arith;

    fn rule(name: &str, lhs: &str, rhs: &str) -> Rewrite<Arith, ()> {
        Rewrite::parse(name, lhs, rhs).unwrap()
    }

    #[test]
    fn clean_ruleset_has_no_findings() {
        let rules = vec![rule("assoc", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)")];
        let report = lint_ruleset(&rules);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn unbound_rhs_var_is_deny() {
        let rules = vec![Rewrite::<Arith, ()>::new_unchecked(
            "bad",
            "(+ ?a ?b)".parse().unwrap(),
            "(* ?a ?c)".parse::<Pattern<Arith>>().unwrap(),
        )];
        let report = lint_ruleset(&rules);
        assert_eq!(report.deny_count(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, "SZL001");
        assert!(d.message.contains("?c"));
        // The dropped ?b is also reported, as a warning.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "SZL002" && d.message.contains("?b")));
    }

    #[test]
    fn unused_lhs_var_is_warn() {
        let rules = vec![rule("drop", "(+ ?a ?b)", "?a")];
        let report = lint_ruleset(&rules);
        assert!(report.is_clean());
        assert_eq!(report.warn_count(), 1);
        assert_eq!(report.diagnostics[0].code, "SZL002");
    }

    #[test]
    fn exact_and_alpha_duplicates() {
        let rules = vec![
            rule("one", "(+ ?a ?b)", "(+ ?b ?a)"),
            rule("two", "(+ ?a ?b)", "(+ ?b ?a)"),
            rule("three", "(+ ?x ?y)", "(+ ?y ?x)"),
        ];
        let report = lint_ruleset(&rules);
        let codes: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "SZL003" || d.code == "SZL004")
            .map(|d| d.code)
            .collect();
        // two is an exact dup of one; three is an α-dup of both.
        assert_eq!(codes, ["SZL003", "SZL004", "SZL004"]);
    }

    #[test]
    fn inverse_pair_and_self_inverse() {
        let rules = vec![
            rule("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
            rule("fwd", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
            rule("bwd", "(+ (* ?x ?y) (* ?x ?z))", "(* ?x (+ ?y ?z))"),
        ];
        let report = lint_ruleset(&rules);
        let inv: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "SZL005")
            .collect();
        assert_eq!(inv.len(), 2, "{}", report.render_text());
        assert!(inv[0].message.contains("self-inverse"));
        assert!(inv[1].message.contains("`bwd`"));
    }

    #[test]
    fn expansive_rule_is_info() {
        let rules = vec![rule("distr", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))")];
        let report = lint_ruleset(&rules);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "SZL006" && d.severity == Severity::Info));
    }

    #[test]
    fn dynamic_rules_are_opaque() {
        use sz_egraph::{EGraph, FnApplier, Subst};
        let rules = vec![Rewrite::<Arith, ()>::new(
            "dyn",
            "(+ ?a ?b)".parse().unwrap(),
            FnApplier(|_: &mut EGraph<Arith, ()>, _, _: &Subst| None),
        )
        .unwrap()];
        let report = lint_ruleset(&rules);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
}
