//! Diagnostics: severity, code, location, message — plus deterministic
//! text and JSON renderings that golden fixtures pin byte-exact.

use std::fmt;

use sz_trace::json_escape;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact is broken: applying/running it will panic, miscompute,
    /// or produce degenerate geometry. Gates fail on any deny finding.
    Deny,
    /// Suspicious but not necessarily wrong (duplicate rules, unused
    /// variables, empty boolean operands).
    Warn,
    /// Expected structure worth auditing (inverse rule pairs, expansive
    /// rules, identity transforms).
    Info,
}

impl Severity {
    /// The lowercase keyword used in both renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: what, where, and how bad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The finding's severity.
    pub severity: Severity,
    /// The stable diagnostic code (`SZLxxx`; see the crate docs for the
    /// full table).
    pub code: &'static str,
    /// Where the finding anchors: `rule:<name>`, `rule:<name>/vm@pc<k>`,
    /// or `input:<name>[@<child-index-path>]`.
    pub location: String,
    /// Human-readable description of the defect.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        severity: Severity,
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            location: location.into(),
            message: message.into(),
        }
    }

    /// The single-line text rendering:
    /// `{severity} {code} {location}: {message}`.
    pub fn render(&self) -> String {
        format!(
            "{} {} {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }

    /// The finding as a JSON object (hand-rolled; the workspace carries no
    /// serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"location\":\"{}\",\"message\":\"{}\"}}",
            self.severity,
            self.code,
            json_escape(&self.location),
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of findings from one analysis run.
///
/// Ordering is the analyzers' deterministic emission order (rule order,
/// then pre-order within each artifact), so renderings are stable across
/// runs and machines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another report.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of info-level findings.
    pub fn info_count(&self) -> usize {
        self.count(Severity::Info)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when the report carries no deny-level finding (warn/info are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.deny_count() == 0
    }

    /// Findings of exactly the given severity.
    pub fn with_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// The text rendering: one line per finding, then a summary line.
    /// Golden fixtures compare this byte-exact.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} deny, {} warn, {} info\n",
            self.deny_count(),
            self.warn_count(),
            self.info_count()
        ));
        out
    }

    /// The JSON rendering: a single line with a `findings` array and a
    /// `counts` object. Golden fixtures compare this byte-exact.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"findings\":[{}],\"counts\":{{\"deny\":{},\"warn\":{},\"info\":{}}}}}",
            findings.join(","),
            self.deny_count(),
            self.warn_count(),
            self.info_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_counts() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Severity::Deny,
            "SZL001",
            "rule:bad",
            "rhs variable ?c unbound by lhs",
        ));
        r.push(Diagnostic::new(
            Severity::Info,
            "SZL005",
            "rule:comm",
            "self-inverse",
        ));
        assert_eq!(r.deny_count(), 1);
        assert_eq!(r.info_count(), 1);
        assert!(!r.is_clean());
        assert_eq!(
            r.render_text(),
            "deny SZL001 rule:bad: rhs variable ?c unbound by lhs\n\
             info SZL005 rule:comm: self-inverse\n\
             1 deny, 0 warn, 1 info\n"
        );
        assert!(r
            .to_json()
            .starts_with("{\"findings\":[{\"severity\":\"deny\""));
        assert!(r
            .to_json()
            .ends_with("\"counts\":{\"deny\":1,\"warn\":0,\"info\":1}}"));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.render_text(), "0 deny, 0 warn, 0 info\n");
        assert_eq!(
            r.to_json(),
            "{\"findings\":[],\"counts\":{\"deny\":0,\"warn\":0,\"info\":0}}"
        );
    }

    #[test]
    fn json_escapes_message() {
        let d = Diagnostic::new(Severity::Warn, "SZL003", "rule:x", "a \"quoted\" dup");
        assert!(d.to_json().contains("a \\\"quoted\\\" dup"));
    }
}
