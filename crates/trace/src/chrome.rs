//! Chrome trace-event JSON export: the output loads directly into
//! Perfetto / `chrome://tracing`. All JSON is hand-rolled (the crate is
//! zero-dependency).

use crate::span::{ArgValue, Span};

/// Escape a string for embedding inside a JSON string literal
/// (quotes, backslashes, and control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number: non-finite values become `null`,
/// negative zero normalizes to `0`.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_owned()
    } else if v == 0.0 {
        "0".to_owned()
    } else {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers; keep them compact.
        s
    }
}

fn render_args(args: &[(&'static str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", json_escape(k)));
        match v {
            ArgValue::Int(n) => out.push_str(&n.to_string()),
            ArgValue::Float(f) => out.push_str(&json_f64(*f)),
            ArgValue::Str(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
        }
    }
    out.push('}');
    out
}

/// Render spans as a Chrome trace-event JSON document:
/// `{"traceEvents":[{"name",...,"ph":"X","ts",...}]}` with one complete
/// (`"ph":"X"`) event per span.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{}}}",
            json_escape(&s.name),
            json_escape(s.cat),
            s.start_us,
            s.dur_us,
            s.tid,
            render_args(&s.args),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn escapes_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }

    #[test]
    fn trace_document_shape() {
        let spans = vec![Span {
            name: Cow::Borrowed("search"),
            cat: "runner",
            start_us: 10,
            dur_us: 5,
            tid: 1,
            args: vec![
                ("matches", ArgValue::Int(3)),
                ("rule", ArgValue::Str("flatten".into())),
            ],
        }];
        let json = chrome_trace_json(&spans);
        assert_eq!(
            json,
            "{\"traceEvents\":[{\"name\":\"search\",\"cat\":\"runner\",\"ph\":\"X\",\
             \"ts\":10,\"dur\":5,\"pid\":1,\"tid\":1,\
             \"args\":{\"matches\":3,\"rule\":\"flatten\"}}]}"
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn json_f64_normalizes() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(-0.0), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
