//! Hierarchical spans: a [`Tracer`] hands out RAII [`SpanGuard`]s that
//! record a completed [`Span`] into a thread-safe [`TraceSink`] on drop.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, MonotonicClock};

/// A span argument value (rendered into the Chrome trace `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A signed integer argument.
    Int(i64),
    /// A floating-point argument.
    Float(f64),
    /// A string argument.
    Str(String),
}

/// One completed span: a named, categorized interval of work.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (e.g. `"search"`, a rule name, a job name).
    pub name: Cow<'static, str>,
    /// Category used for grouping (e.g. `"runner"`, `"pipeline"`, `"batch"`).
    pub cat: &'static str,
    /// Start timestamp in microseconds (per the tracer's [`Clock`]).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Logical thread id (stable per OS thread, assigned on first span).
    pub tid: u64,
    /// Key/value arguments attached via [`SpanGuard::arg_i64`] and friends.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A thread-safe destination for completed spans.
pub trait TraceSink: Send + Sync {
    /// Record one completed span.
    fn record(&self, span: Span);
    /// Return every span recorded so far (in recording order).
    /// Sinks that discard spans return an empty vec.
    fn events(&self) -> Vec<Span>;
}

/// The default sink: an in-memory, mutex-guarded vec of spans.
#[derive(Debug, Default)]
pub struct MemorySink {
    spans: Mutex<Vec<Span>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, span: Span) {
        self.spans.lock().unwrap().push(span);
    }

    fn events(&self) -> Vec<Span> {
        self.spans.lock().unwrap().clone()
    }
}

/// A sink that drops everything: for measuring tracing overhead with
/// timestamping still active but no storage.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _span: Span) {}

    fn events(&self) -> Vec<Span> {
        Vec::new()
    }
}

struct TracerInner {
    clock: Box<dyn Clock>,
    sink: Box<dyn TraceSink>,
    next_tid: AtomicU64,
}

thread_local! {
    static CACHED_TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

impl TracerInner {
    /// Logical thread ids start at 1 and are assigned in the order
    /// threads first open a span (stable for sequential runs).
    fn tid(&self) -> u64 {
        CACHED_TID.with(|c| {
            let t = c.get();
            if t != 0 {
                return t;
            }
            let t = self.next_tid.fetch_add(1, Ordering::Relaxed) + 1;
            c.set(t);
            t
        })
    }
}

/// The span recorder. Cloning is cheap (an `Arc` bump); a *disabled*
/// tracer is a `None` and every operation on it is a branch on that
/// `Option` — no clock reads, no allocation, no locking.
#[derive(Clone)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that records nothing and never reads the clock.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// A recording tracer with the monotonic clock and an in-memory sink.
    pub fn enabled() -> Self {
        Self::with_clock_and_sink(Box::new(MonotonicClock::new()), Box::new(MemorySink::new()))
    }

    /// A recording tracer with an explicit clock and sink (tests inject
    /// [`crate::FixedClock`] / [`NullSink`] here).
    pub fn with_clock_and_sink(clock: Box<dyn Clock>, sink: Box<dyn TraceSink>) -> Self {
        Tracer(Some(Arc::new(TracerInner {
            clock,
            sink,
            next_tid: AtomicU64::new(0),
        })))
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a span; it records itself into the sink when the returned
    /// guard drops. On a disabled tracer this is a no-op.
    pub fn span(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) -> SpanGuard {
        match &self.0 {
            None => SpanGuard(None),
            Some(inner) => {
                let start_us = inner.clock.now_micros();
                SpanGuard(Some(ActiveSpan {
                    tracer: Arc::clone(inner),
                    name: name.into(),
                    cat,
                    start_us,
                    args: Vec::new(),
                }))
            }
        }
    }

    /// Every span recorded so far.
    pub fn events(&self) -> Vec<Span> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.sink.events(),
        }
    }

    /// Read the tracer's clock (for latency measurements that must stay
    /// deterministic under an injected [`crate::FixedClock`]). Returns
    /// `None` when disabled.
    pub fn now_micros(&self) -> Option<u64> {
        self.0.as_ref().map(|inner| inner.clock.now_micros())
    }
}

struct ActiveSpan {
    tracer: Arc<TracerInner>,
    name: Cow<'static, str>,
    cat: &'static str,
    start_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard for an open span; records the completed [`Span`] on drop.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attach an integer argument.
    pub fn arg_i64(&mut self, key: &'static str, value: i64) {
        if let Some(a) = &mut self.0 {
            a.args.push((key, ArgValue::Int(value)));
        }
    }

    /// Attach a float argument.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        if let Some(a) = &mut self.0 {
            a.args.push((key, ArgValue::Float(value)));
        }
    }

    /// Attach a string argument.
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(a) = &mut self.0 {
            a.args.push((key, ArgValue::Str(value.into())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let end_us = a.tracer.clock.now_micros();
            let tid = a.tracer.tid();
            a.tracer.sink.record(Span {
                name: a.name,
                cat: a.cat,
                start_us: a.start_us,
                dur_us: end_us.saturating_sub(a.start_us),
                tid,
                args: a.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FixedClock;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let mut g = t.span("cat", "work");
            g.arg_i64("n", 3);
        }
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
    }

    #[test]
    fn spans_record_on_drop_with_fixed_clock() {
        let t =
            Tracer::with_clock_and_sink(Box::new(FixedClock::new(5)), Box::new(MemorySink::new()));
        {
            let mut outer = t.span("runner", "iteration");
            outer.arg_i64("iter", 0);
            let _inner = t.span("runner", "search");
        }
        let events = t.events();
        assert_eq!(events.len(), 2);
        // Inner span closes first: start 5, end 10.
        assert_eq!(events[0].name, "search");
        assert_eq!(events[0].start_us, 5);
        assert_eq!(events[0].dur_us, 5);
        assert_eq!(events[1].name, "iteration");
        assert_eq!(events[1].start_us, 0);
        assert_eq!(events[1].dur_us, 15);
        assert_eq!(events[1].args, vec![("iter", ArgValue::Int(0))]);
    }

    #[test]
    fn null_sink_discards() {
        let t = Tracer::with_clock_and_sink(Box::new(FixedClock::new(1)), Box::new(NullSink));
        drop(t.span("cat", "work"));
        assert!(t.is_enabled());
        assert!(t.events().is_empty());
    }
}
