//! A metrics registry: named counters, gauges, and log-bucketed
//! histograms with p50/p90/p99 readout, plus a hand-rolled JSON dump
//! (the crate is zero-dependency; no serde).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::chrome::{json_escape, json_f64};

/// Number of power-of-two histogram buckets (bucket `i` holds values in
/// `(2^(i-1), 2^i]`, bucket 0 holds values `<= 1`).
const BUCKETS: usize = 64;

/// A log2-bucketed histogram of non-negative samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }
}

fn bucket_index(value: f64) -> usize {
    if value <= 1.0 {
        0
    } else {
        (value.log2().ceil() as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one sample (negative samples clamp to 0).
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`). Log-bucketed, so the answer is exact to
    /// within a factor of 2. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 {
                    1.0
                } else {
                    (1u64 << i.min(63)) as f64
                };
            }
        }
        self.max
    }

    /// Per-bucket counts, as `(upper_bound, count)` pairs for non-empty
    /// buckets only.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                (
                    if i == 0 {
                        1.0
                    } else {
                        (1u64 << i.min(63)) as f64
                    },
                    c,
                )
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The metrics registry handle. Cloning is cheap (an `Arc` bump); a
/// *disabled* registry is a `None` and every operation on it is a
/// no-op branch — no locking, no allocation.
#[derive(Clone, Default)]
pub struct Metrics(Option<Arc<MetricsInner>>);

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Metrics {
    /// A recording registry.
    pub fn new() -> Self {
        Metrics(Some(Arc::new(MetricsInner::default())))
    }

    /// A registry that records nothing.
    pub fn disabled() -> Self {
        Metrics(None)
    }

    /// Whether metric updates are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add `delta` to the named counter (created at 0 on first use).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.0 {
            *inner
                .counters
                .lock()
                .unwrap()
                .entry(name.to_owned())
                .or_insert(0) += delta;
        }
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        if let Some(inner) = &self.0 {
            inner.gauges.lock().unwrap().insert(name.to_owned(), value);
        }
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.0 {
            inner
                .histograms
                .lock()
                .unwrap()
                .entry(name.to_owned())
                .or_default()
                .observe(value);
        }
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.0 {
            None => 0,
            Some(inner) => inner
                .counters
                .lock()
                .unwrap()
                .get(name)
                .copied()
                .unwrap_or(0),
        }
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.0.as_ref()?.gauges.lock().unwrap().get(name).copied()
    }

    /// Snapshot of a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.0
            .as_ref()?
            .histograms
            .lock()
            .unwrap()
            .get(name)
            .cloned()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Render the whole registry as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,p50,p90,p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                json_escape(k),
                h.count(),
                json_f64(h.sum()),
                json_f64(h.min()),
                json_f64(h.max()),
                json_f64(h.quantile(0.50)),
                json_f64(h.quantile(0.90)),
                json_f64(h.quantile(0.99)),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Deterministic plain-text dump: counters and gauges with values,
    /// histograms with sample counts only (no wall times), sorted by
    /// name. This is the comparison surface for determinism tests.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.counters() {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in self.gauges() {
            out.push_str(&format!("gauge {k} = {v}\n"));
        }
        for (k, h) in self.histograms() {
            out.push_str(&format!("histogram {k} count = {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = Metrics::new();
        m.counter_add("cache.hit", 2);
        m.counter_add("cache.hit", 3);
        m.gauge_set("pool.queue_depth", 7);
        m.gauge_set("pool.queue_depth", 4);
        assert_eq!(m.counter("cache.hit"), 5);
        assert_eq!(m.gauge("pool.queue_depth"), Some(4));
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn disabled_metrics_ignore_everything() {
        let m = Metrics::disabled();
        m.counter_add("x", 1);
        m.observe("h", 10.0);
        assert_eq!(m.counter("x"), 0);
        assert!(m.histogram("h").is_none());
        assert_eq!(
            m.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn histogram_quantiles_use_log_bucket_bounds() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        // Ranks: p50 -> 2nd sample (bucket <=2), p99 -> 4th (bucket <=128).
        assert_eq!(h.quantile(0.50), 2.0);
        assert_eq!(h.quantile(0.99), 128.0);
        assert_eq!(h.buckets(), vec![(1.0, 1), (2.0, 1), (4.0, 1), (128.0, 1)]);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn json_dump_is_sorted_and_parsable_shape() {
        let m = Metrics::new();
        m.counter_add("b", 1);
        m.counter_add("a", 2);
        m.observe("lat", 5.0);
        let json = m.to_json();
        assert!(json.starts_with("{\"counters\":{\"a\":2,\"b\":1}"));
        assert!(json.contains("\"lat\":{\"count\":1"));
    }
}
