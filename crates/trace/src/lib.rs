//! # sz-trace: spans, metrics, and profiling for the synthesis stack
//!
//! A zero-dependency observability layer (the build environment is
//! offline — no `tracing`, no `prometheus`) threaded through every
//! layer of the Szalinski reproduction:
//!
//! * [`Tracer`] / [`SpanGuard`] — lightweight hierarchical **spans**
//!   with monotonic-clock timing and a thread-safe [`TraceSink`] trait
//!   ([`MemorySink`], [`NullSink`]);
//! * [`Metrics`] — a registry of named **counters**, **gauges**, and
//!   log-bucketed [`Histogram`]s with p50/p90/p99 readout;
//! * [`chrome_trace_json`] — a Chrome **trace-event JSON** exporter
//!   (loadable in Perfetto / `chrome://tracing`) and [`phase_summary`],
//!   a deterministic plain-text renderer for tests;
//! * [`Telemetry`] — the bundle (one tracer + one registry) that the
//!   `Runner`, the `szalinski` pipeline, and `sz-batch` all accept.
//!
//! ## Overhead discipline
//!
//! A disabled handle is an internal `None`: no clock reads, no
//! allocation, no locking — a single branch per instrumentation point.
//! Every instrumented hot path in the workspace is gated this way, so
//! `Telemetry::disabled()` (the default everywhere) costs nothing
//! measurable (see `crates/bench/src/bin/trace_overhead.rs`).
//!
//! ## Determinism
//!
//! All timestamps flow through the [`Clock`] trait. Tests inject a
//! [`FixedClock`] (a counter advancing a fixed step per read) and two
//! identical sequential runs then produce byte-identical
//! [`phase_summary`] text and metric values.
//!
//! ## Example
//!
//! ```
//! use sz_trace::{phase_summary, FixedClock, MemorySink, Telemetry, Tracer};
//!
//! let t = Telemetry::deterministic(10);
//! {
//!     let mut span = t.span("runner", "search");
//!     span.arg_i64("matches", 3);
//!     t.metrics.counter_add("cache.hit", 1);
//! }
//! assert_eq!(t.metrics.counter("cache.hit"), 1);
//! assert_eq!(
//!     t.phase_summary(),
//!     "phase summary\n  runner/search  count=1  total_us=10\n"
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod clock;
mod metrics;
mod span;
mod summary;

pub use chrome::{chrome_trace_json, json_escape, json_f64};
pub use clock::{Clock, FixedClock, MonotonicClock};
pub use metrics::{Histogram, Metrics};
pub use span::{ArgValue, MemorySink, NullSink, Span, SpanGuard, TraceSink, Tracer};
pub use summary::{phase_rows, phase_summary, PhaseRow};

/// One tracer plus one metrics registry: the bundle every instrumented
/// layer accepts. Cloning is cheap (two `Arc` bumps); all clones feed
/// the same sink and registry.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// The span recorder.
    pub tracer: Tracer,
    /// The metrics registry.
    pub metrics: Metrics,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// The do-nothing bundle: every span and metric operation is a
    /// no-op branch (the default at every instrumentation point).
    pub fn disabled() -> Self {
        Telemetry {
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// A recording bundle: monotonic clock, in-memory sink, live
    /// metrics registry.
    pub fn enabled() -> Self {
        Telemetry {
            tracer: Tracer::enabled(),
            metrics: Metrics::new(),
        }
    }

    /// A recording bundle over a [`FixedClock`] advancing
    /// `step_micros` per timestamp read — for determinism tests.
    pub fn deterministic(step_micros: u64) -> Self {
        Telemetry {
            tracer: Tracer::with_clock_and_sink(
                Box::new(FixedClock::new(step_micros)),
                Box::new(MemorySink::new()),
            ),
            metrics: Metrics::new(),
        }
    }

    /// A timestamping-but-discarding bundle ([`NullSink`], disabled
    /// metrics) — for measuring the cost of clock reads alone.
    pub fn null_sink() -> Self {
        Telemetry {
            tracer: Tracer::with_clock_and_sink(
                Box::new(MonotonicClock::new()),
                Box::new(NullSink),
            ),
            metrics: Metrics::disabled(),
        }
    }

    /// Whether either half is recording.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled() || self.metrics.is_enabled()
    }

    /// Open a span on the bundled tracer (no-op when disabled).
    pub fn span(
        &self,
        cat: &'static str,
        name: impl Into<std::borrow::Cow<'static, str>>,
    ) -> SpanGuard {
        self.tracer.span(cat, name)
    }

    /// Chrome trace-event JSON for every span recorded so far.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.tracer.events())
    }

    /// Deterministic plain-text phase summary of every span recorded
    /// so far.
    pub fn phase_summary(&self) -> String {
        phase_summary(&self.tracer.events())
    }

    /// JSON dump of the metrics registry.
    pub fn metrics_json(&self) -> String {
        self.metrics.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let t = Telemetry::disabled();
        drop(t.span("cat", "x"));
        t.metrics.counter_add("c", 1);
        assert!(!t.is_enabled());
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
        assert_eq!(t.phase_summary(), "phase summary\n");
        assert_eq!(
            t.metrics_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn deterministic_bundles_agree_run_to_run() {
        let run = || {
            let t = Telemetry::deterministic(7);
            for i in 0..3 {
                let mut s = t.span("runner", "iteration");
                s.arg_i64("iter", i);
                drop(t.span("runner", "search"));
                t.metrics.observe("iter.dur_us", 10.0);
            }
            (t.phase_summary(), t.metrics.render_text())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn null_sink_bundle_timestamps_but_stores_nothing() {
        let t = Telemetry::null_sink();
        drop(t.span("cat", "x"));
        assert!(t.tracer.is_enabled());
        assert!(t.tracer.events().is_empty());
        assert!(!t.metrics.is_enabled());
    }
}
