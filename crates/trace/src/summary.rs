//! Deterministic plain-text phase summary: spans aggregated by
//! `(category, name)`, sorted, with counts and total duration. Under an
//! injected [`crate::FixedClock`] the output is byte-reproducible,
//! which is what the determinism tests compare.

use std::collections::BTreeMap;

use crate::span::Span;

/// One aggregated row of the phase summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Number of spans with this `(cat, name)`.
    pub count: u64,
    /// Sum of their durations in microseconds.
    pub total_us: u64,
}

/// Aggregate spans into sorted `(cat, name)` rows.
pub fn phase_rows(spans: &[Span]) -> Vec<PhaseRow> {
    let mut agg: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = agg
            .entry((s.cat.to_owned(), s.name.to_string()))
            .or_insert((0, 0));
        e.0 += 1;
        e.1 += s.dur_us;
    }
    agg.into_iter()
        .map(|((cat, name), (count, total_us))| PhaseRow {
            cat,
            name,
            count,
            total_us,
        })
        .collect()
}

/// Render the phase summary as deterministic plain text: one line per
/// `(cat, name)` pair, sorted, `cat/name  count=N  total_us=T`.
pub fn phase_summary(spans: &[Span]) -> String {
    let rows = phase_rows(spans);
    let mut out = String::from("phase summary\n");
    let width = rows
        .iter()
        .map(|r| r.cat.len() + 1 + r.name.len())
        .max()
        .unwrap_or(0);
    for r in &rows {
        let label = format!("{}/{}", r.cat, r.name);
        out.push_str(&format!(
            "  {label:<width$}  count={}  total_us={}\n",
            r.count, r.total_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use std::borrow::Cow;

    fn span(cat: &'static str, name: &'static str, dur: u64) -> Span {
        Span {
            name: Cow::Borrowed(name),
            cat,
            start_us: 0,
            dur_us: dur,
            tid: 1,
            args: vec![],
        }
    }

    #[test]
    fn rows_aggregate_and_sort() {
        let spans = vec![
            span("runner", "search", 5),
            span("batch", "job", 7),
            span("runner", "search", 3),
        ];
        let rows = phase_rows(&spans);
        assert_eq!(
            rows,
            vec![
                PhaseRow {
                    cat: "batch".into(),
                    name: "job".into(),
                    count: 1,
                    total_us: 7
                },
                PhaseRow {
                    cat: "runner".into(),
                    name: "search".into(),
                    count: 2,
                    total_us: 8
                },
            ]
        );
    }

    #[test]
    fn summary_text_is_stable() {
        let spans = vec![span("runner", "search", 5), span("runner", "apply", 2)];
        assert_eq!(
            phase_summary(&spans),
            "phase summary\n  runner/apply   count=1  total_us=2\n  runner/search  count=1  total_us=5\n"
        );
    }
}
