//! Clock abstraction: monotonic wall time for production, a fixed-step
//! counter for deterministic tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonically non-decreasing microsecond timestamps.
///
/// Telemetry never reads the system clock directly; every timestamp
/// flows through this trait so tests can inject a [`FixedClock`] and
/// get byte-identical trace output across runs.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since this clock's origin.
    fn now_micros(&self) -> u64;
}

/// The production clock: microseconds since the clock was created,
/// read from [`Instant`] (monotonic, immune to wall-clock steps).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A deterministic clock for tests: every [`Clock::now_micros`] call
/// returns the previous value plus a fixed step, so two runs that make
/// the same sequence of timestamp reads see identical times.
#[derive(Debug)]
pub struct FixedClock {
    next: AtomicU64,
    step: u64,
}

impl FixedClock {
    /// A clock starting at 0 that advances `step_micros` per read.
    pub fn new(step_micros: u64) -> Self {
        FixedClock {
            next: AtomicU64::new(0),
            step: step_micros,
        }
    }
}

impl Clock for FixedClock {
    fn now_micros(&self) -> u64 {
        self.next.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_clock_steps_deterministically() {
        let c = FixedClock::new(10);
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_micros(), 10);
        assert_eq!(c.now_micros(), 20);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
