//! Nonlinear trigonometric regression: fits `x(i) = a·sin(b·i + c) + d`
//! (degrees) by frequency scanning, linear least squares, and Gauss–Newton
//! refinement — our replacement for the paper's Owl-based "iterative SVD
//! refinement" solver (§4.1), with the same model class (sine waves, since
//! Z3 cannot handle transcendentals).

use crate::{lstsq, snap, snap_angle, Mat};

/// A fitted sinusoid `a·sin(b·i + c) + d` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrigFit {
    /// Amplitude (non-negative).
    pub a: f64,
    /// Frequency in degrees per index step.
    pub b: f64,
    /// Phase in degrees, normalized to `[0, 360)`.
    pub c: f64,
    /// Vertical offset.
    pub d: f64,
    /// Coefficient of determination on the training samples.
    pub r2: f64,
}

impl TrigFit {
    /// Evaluates the model at index `i`.
    pub fn eval(&self, i: f64) -> f64 {
        self.a * (self.b * i + self.c).to_radians().sin() + self.d
    }
}

/// Coefficient of determination of `model` against `values` (indices
/// `0..n`). Returns 1.0 for a perfect fit of constant data and 0.0 for a
/// failed fit of constant data.
pub fn r_squared(values: &[f64], model: impl Fn(f64) -> f64) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let ss_tot: f64 = values.iter().map(|&x| (x - mean) * (x - mean)).sum();
    let ss_res: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let r = model(i as f64) - x;
            r * r
        })
        .sum();
    if ss_tot < 1e-18 {
        if ss_res < 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Linear sub-solve: for a fixed frequency `b`, the model is linear in
/// `(A, B, d)` where `x = A·sin(b i) + B·cos(b i) + d`. Returns
/// `(A, B, d, ss_res)`.
fn solve_fixed_freq(values: &[f64], b: f64) -> (f64, f64, f64, f64) {
    let rows: Vec<Vec<f64>> = (0..values.len())
        .map(|i| {
            let t = (b * i as f64).to_radians();
            vec![t.sin(), t.cos(), 1.0]
        })
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let m = Mat::from_rows(&row_refs);
    let sol = lstsq(&m, values, 1e-10);
    let (aa, bb, d) = (sol[0], sol[1], sol[2]);
    let ss: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let t = (b * i as f64).to_radians();
            let r = aa * t.sin() + bb * t.cos() + d - x;
            r * r
        })
        .sum();
    (aa, bb, d, ss)
}

/// Gauss–Newton refinement of `(A, B, d, b)` from a frequency-scan seed.
fn refine(
    values: &[f64],
    mut aa: f64,
    mut bb: f64,
    mut d: f64,
    mut b: f64,
) -> (f64, f64, f64, f64) {
    for _ in 0..20 {
        let n = values.len();
        let mut jac_rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut neg_r: Vec<f64> = Vec::with_capacity(n);
        for (i, &x) in values.iter().enumerate() {
            let fi = i as f64;
            let t = (b * fi).to_radians();
            let (s, cth) = (t.sin(), t.cos());
            let r = aa * s + bb * cth + d - x;
            // d/db in degrees: chain rule brings a π/180 factor.
            let ddb = (aa * cth - bb * s) * fi * std::f64::consts::PI / 180.0;
            jac_rows.push(vec![s, cth, 1.0, ddb]);
            neg_r.push(-r);
        }
        let row_refs: Vec<&[f64]> = jac_rows.iter().map(Vec::as_slice).collect();
        let jac = Mat::from_rows(&row_refs);
        let delta = lstsq(&jac, &neg_r, 1e-10);
        aa += delta[0];
        bb += delta[1];
        d += delta[2];
        b += delta[3];
        if delta.iter().map(|x| x.abs()).fold(0.0f64, f64::max) < 1e-12 {
            break;
        }
    }
    (aa, bb, d, b)
}

/// Converts linear coefficients `(A, B)` to amplitude/phase `(a, c)` with
/// `a ≥ 0` and `c ∈ [0, 360)`.
fn to_amp_phase(aa: f64, bb: f64) -> (f64, f64) {
    let a = aa.hypot(bb);
    let mut c = bb.atan2(aa).to_degrees();
    c = c.rem_euclid(360.0);
    (a, c)
}

/// Fits `a·sin(b·i + c) + d` to `values[i]`, `i = 0..n`.
///
/// Scans frequencies `b = 180·k/n` for `k = 1 .. 2n-1` (excluding aliases
/// of the constant), solves the linear subproblem per frequency, refines
/// the best seed with Gauss–Newton, then snaps parameters to nice angles
/// and amplitudes when that preserves the fit. Returns `None` for inputs
/// that are too short (`n < 4`) or essentially constant.
///
/// # Examples
///
/// ```
/// use sz_solver::fit_trig;
/// // x(i) = 10 + 7.07·sin(90·i + 315): the hex-cell pattern of Fig. 19.
/// let values: Vec<f64> = (0..4)
///     .map(|i| 10.0 + 7.07 * ((90.0 * i as f64 + 315.0).to_radians()).sin())
///     .collect();
/// let fit = fit_trig(&values, 1e-3).unwrap();
/// assert!((fit.b - 90.0).abs() < 1e-6);
/// assert!(fit.r2 > 0.999);
/// ```
pub fn fit_trig(values: &[f64], eps: f64) -> Option<TrigFit> {
    let n = values.len();
    if n < 4 {
        return None;
    }
    let spread = values.iter().cloned().fold(f64::MIN, f64::max)
        - values.iter().cloned().fold(f64::MAX, f64::min);
    if spread <= 2.0 * eps {
        return None; // constant data: the polynomial solver's job
    }

    // Frequency scan over (0, 180]: on an integer index grid every
    // sinusoid aliases into the Nyquist range, so higher frequencies span
    // identical model spaces and lower ones are more interpretable.
    let scanned: Vec<(f64, f64, f64, f64, f64)> = (1..=n)
        .map(|k| {
            let b = 180.0 * k as f64 / n as f64;
            let (aa, bb, d, ss) = solve_fixed_freq(values, b);
            (ss, aa, bb, d, b)
        })
        .collect();
    let best_ss = scanned.iter().map(|c| c.0).fold(f64::INFINITY, f64::min);
    // Among (numerically) tied frequencies prefer full-period coverage —
    // b·n ≡ 0 (mod 360) lays the n elements around whole circles, the
    // form the paper reports (e.g. 90° for 4 hex cells) and the one that
    // makes "change the count" edits behave — then the lowest frequency.
    let tie_tol = best_ss + 1e-9 * (1.0 + best_ss);
    let (_, aa, bb, d, b) = scanned
        .iter()
        .filter(|c| c.0 <= tie_tol)
        .min_by(|x, y| {
            let full = |b: f64| {
                let r = (b * n as f64).rem_euclid(360.0);
                r.min(360.0 - r) > 1e-6
            };
            (full(x.4), x.4)
                .partial_cmp(&(full(y.4), y.4))
                .expect("frequencies are finite")
        })
        .copied()?;
    let (aa, bb, d, b) = refine(values, aa, bb, d, b);
    let (a, c) = to_amp_phase(aa, bb);

    // Snap (b, c, a, d) to nice values where the fit survives.
    let tol = (2.0 * eps).max(1e-6 * a.abs());
    let mut cands: Vec<(f64, f64, f64, f64)> = Vec::new();
    let sb = snap_angle(b, 10.0 * tol);
    let sc = snap_angle(c, 10.0 * tol);
    let sa = snap(a, tol);
    let sd = snap(d, tol);
    cands.push((sa, sb, sc, sd));
    cands.push((a, sb, sc, d));
    cands.push((sa, b, c, sd));
    cands.push((a, b, c, d));

    let scale = a.abs().max(1.0);
    for (a, b, c, d) in cands {
        // A 4-parameter sinusoid interpolates any 4 points, so short
        // sequences carry no evidence by fit quality alone. Demand
        // grid-aligned parameters there (the paper's short trig examples
        // are all 15°/360-k-aligned: 90°·i + 315° etc.); longer
        // sequences have spare samples and may keep raw parameters.
        if values.len() <= 5 && !(nice_angle(b) && nice_angle(c.rem_euclid(360.0))) {
            continue;
        }
        let model = |i: f64| a * (b * i + c).to_radians().sin() + d;
        let worst = values
            .iter()
            .enumerate()
            .map(|(i, &x)| (model(i as f64) - x).abs())
            .fold(0.0f64, f64::max);
        // ε scaled by amplitude: residuals must be design-noise-sized
        // relative to the oscillation being claimed.
        if worst <= eps * scale {
            let r2 = r_squared(values, model);
            let c = c.rem_euclid(360.0);
            return Some(TrigFit { a, b, c, d, r2 });
        }
    }
    None
}

/// True if an angle sits on the "interpretable" grid: a multiple of 15°
/// or a divisor pattern `±360/k`.
fn nice_angle(x: f64) -> bool {
    let tol = 1e-6;
    if (x / 15.0 - (x / 15.0).round()).abs() * 15.0 <= tol {
        return true;
    }
    (1..=120u32).any(|k| {
        let cand = 360.0 / k as f64;
        (x - cand).abs() <= tol || (x + cand).abs() <= tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, a: f64, b: f64, c: f64, d: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (b * i as f64 + c).to_radians().sin() + d)
            .collect()
    }

    #[test]
    fn recovers_pure_sine() {
        let vals = gen(8, 3.0, 45.0, 30.0, 0.0);
        let fit = fit_trig(&vals, 1e-3).unwrap();
        assert!((fit.a - 3.0).abs() < 1e-6, "a = {}", fit.a);
        assert!((fit.b - 45.0).abs() < 1e-6, "b = {}", fit.b);
        assert!((fit.c - 30.0).abs() < 1e-6, "c = {}", fit.c);
        assert!(fit.d.abs() < 1e-6);
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn recovers_offset_sine_fig19() {
        // 10 + 7.07·sin(90·i + 315), the hex-cell flower generator.
        let vals = gen(4, 7.07, 90.0, 315.0, 10.0);
        let fit = fit_trig(&vals, 1e-3).unwrap();
        assert!((fit.b - 90.0).abs() < 1e-6);
        assert!((fit.d - 10.0).abs() < 1e-3);
        assert!(fit.r2 > 0.999);
    }

    #[test]
    fn square_wave_like_pattern() {
        // §4.1's example list: x-components [-1, -1, 1, 1] admit
        // √2·sin(90·i + 225).
        let fit = fit_trig(&[-1.0, -1.0, 1.0, 1.0], 1e-3).unwrap();
        for (i, want) in [-1.0, -1.0, 1.0, 1.0].iter().enumerate() {
            assert!((fit.eval(i as f64) - want).abs() < 1e-6);
        }
        assert!((fit.a - 2.0f64.sqrt()).abs() < 1e-9, "a = {}", fit.a);
    }

    #[test]
    fn alternating_pattern() {
        let fit = fit_trig(&[-1.0, 1.0, -1.0, 1.0], 1e-3).unwrap();
        for (i, want) in [-1.0, 1.0, -1.0, 1.0].iter().enumerate() {
            assert!((fit.eval(i as f64) - want).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_constant() {
        assert!(fit_trig(&[5.0; 8], 1e-3).is_none());
    }

    #[test]
    fn rejects_too_short() {
        assert!(fit_trig(&[1.0, 2.0, 3.0], 1e-3).is_none());
    }

    #[test]
    fn tolerates_noise() {
        let mut vals = gen(12, 5.0, 30.0, 60.0, 2.0);
        for (i, v) in vals.iter_mut().enumerate() {
            *v += if i % 2 == 0 { 4e-4 } else { -4e-4 };
        }
        let fit = fit_trig(&vals, 1e-3).unwrap();
        assert!((fit.a - 5.0).abs() < 1e-2);
        assert!((fit.b - 30.0).abs() < 1e-2);
        assert!(fit.r2 > 0.9999);
    }

    #[test]
    fn r_squared_bounds() {
        let vals = [1.0, 2.0, 3.0];
        assert!((r_squared(&vals, |i| i + 1.0) - 1.0).abs() < 1e-12);
        assert!(r_squared(&vals, |_| 2.0) < 0.1);
    }

    #[test]
    fn linear_data_fits_poorly_or_not_at_all() {
        // Strictly increasing data over one "period" can be matched by a
        // low-frequency arc, but never perfectly over 2 periods.
        let vals: Vec<f64> = (0..10).map(|i| i as f64 * 3.0).collect();
        if let Some(fit) = fit_trig(&vals, 1e-3) {
            // If something fits within tolerance it must wiggle hugely.
            assert!(fit.a > 5.0);
        }
    }
}
