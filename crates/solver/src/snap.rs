//! Snapping noisy floats to "nice" values (integers, small rationals,
//! square-root multiples), so that inferred closed forms are editable.
//!
//! The paper's examples show exactly this behaviour: a decompiled vector
//! component `1.4999994660` is reported back as `1.5`, and a trig
//! amplitude `7.07` stands for `10/√2`.

/// Snaps `x` to the nearest nice value if within `eps`; otherwise returns
/// `x` unchanged.
///
/// Nice values tried, in order: integers; rationals `p/q` with `q ≤ 16`;
/// multiples of `√2` and `√3` with small rational coefficients.
///
/// # Examples
///
/// ```
/// use sz_solver::snap;
/// assert_eq!(snap(4.9999993, 1e-3), 5.0);
/// assert_eq!(snap(0.33333421, 1e-3), 1.0 / 3.0);
/// assert_eq!(snap(0.123456, 1e-6), 0.123456); // already "its own" value
/// ```
pub fn snap(x: f64, eps: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    // Integers first: they are the most interpretable.
    let rounded = x.round();
    if (x - rounded).abs() <= eps {
        return rounded;
    }
    // Small rationals.
    if let Some(r) = snap_rational(x, eps, 16) {
        return r;
    }
    // √2 / √3 multiples with small rational coefficients (q ≤ 4).
    for root in [2.0f64.sqrt(), 3.0f64.sqrt()] {
        let coeff = x / root;
        if let Some(c) = snap_rational(coeff, eps / root, 4) {
            if c != 0.0 {
                return c * root;
            }
        }
    }
    x
}

/// Snaps to the closest `p/q` with `1 ≤ q ≤ max_den`, if within `eps`.
pub fn snap_rational(x: f64, eps: f64, max_den: u32) -> Option<f64> {
    let mut best: Option<(f64, f64)> = None; // (error, value)
    for q in 1..=max_den {
        let p = (x * q as f64).round();
        let cand = p / q as f64;
        let err = (x - cand).abs();
        if err <= eps {
            match best {
                Some((e, _)) if e <= err => {}
                _ => best = Some((err, cand)),
            }
        }
    }
    best.map(|(_, v)| v)
}

/// True if `x` sits (within `eps`) on the "nice" grid [`snap`] targets:
/// integers, rationals `p/q` with `q ≤ 16`, or small √2/√3 multiples.
/// Used to gate low-evidence fits (few samples) on interpretability.
pub fn is_nice(x: f64, eps: f64) -> bool {
    if !x.is_finite() {
        return false;
    }
    (x - x.round()).abs() <= eps
        || snap_rational(x, eps, 16).is_some()
        || [2.0f64.sqrt(), 3.0f64.sqrt()]
            .iter()
            .any(|root| snap_rational(x / root, eps / root, 4).is_some())
}

/// Snaps an angle in degrees to multiples of 15° or to `360/k` for small
/// `k`, if within `eps`; otherwise returns it unchanged. Used for rotation
/// parameters where `360/n_teeth`-style values abound.
pub fn snap_angle(x: f64, eps: f64) -> f64 {
    let fifteen = (x / 15.0).round() * 15.0;
    if (x - fifteen).abs() <= eps {
        return fifteen;
    }
    for k in 1..=120u32 {
        let cand = 360.0 / k as f64;
        if (x - cand).abs() <= eps {
            return cand;
        }
        if (x + cand).abs() <= eps {
            return -cand;
        }
    }
    snap(x, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_win() {
        assert_eq!(snap(5.0004, 1e-3), 5.0);
        assert_eq!(snap(-12.0001, 1e-3), -12.0);
        assert_eq!(snap(0.0002, 1e-3), 0.0);
    }

    #[test]
    fn rationals() {
        assert_eq!(snap(0.5001, 1e-3), 0.5);
        assert_eq!(snap(0.24999, 1e-3), 0.25);
        assert!((snap(0.866, 2e-3) - 0.866).abs() < 2e-3); // √3/2 ≈ 0.8660
    }

    #[test]
    #[allow(clippy::approx_constant)] // approximate inputs are the point
    fn sqrt_multiples() {
        let s2 = 2.0f64.sqrt();
        assert!((snap(1.41424, 1e-3) - s2).abs() < 1e-12);
        assert!((snap(0.7071, 1e-3) - s2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn far_values_unchanged() {
        assert_eq!(snap(0.123456, 1e-6), 0.123456);
        assert_eq!(snap(17.0317, 1e-4), 17.0317);
    }

    #[test]
    fn angles() {
        assert_eq!(snap_angle(6.00001, 1e-3), 6.0); // 360/60
        assert_eq!(snap_angle(45.0002, 1e-3), 45.0);
        assert_eq!(snap_angle(5.142857, 1e-4), 360.0 / 70.0);
    }

    #[test]
    fn non_finite_passthrough() {
        assert!(snap(f64::NAN, 1e-3).is_nan());
        assert_eq!(snap(f64::INFINITY, 1e-3), f64::INFINITY);
    }
}
