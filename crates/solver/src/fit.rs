//! Model selection across the paper's three closed-form classes
//! (§4.1): degree-1 polynomial, degree-2 polynomial, and sinusoid —
//! plus emission of the fitted form as a LambdaCAD [`Expr`].

use sz_cad::Expr;

use crate::{fit_const, fit_poly1, fit_poly2, fit_trig, r_squared, Poly, TrigFit};

/// A closed form for a numeric sequence, as a function of its index.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedFn {
    /// A constant function.
    Const(f64),
    /// A polynomial of degree 1 or 2.
    Poly(Poly),
    /// A sinusoid `a·sin(b·i + c) + d`.
    Trig(TrigFit),
}

impl FittedFn {
    /// Evaluates the closed form at index `i`.
    pub fn eval(&self, i: f64) -> f64 {
        match self {
            FittedFn::Const(v) => *v,
            FittedFn::Poly(p) => p.eval(i),
            FittedFn::Trig(t) => t.eval(i),
        }
    }

    /// Coefficient of determination against a sample sequence.
    pub fn r2(&self, values: &[f64]) -> f64 {
        r_squared(values, |i| self.eval(i))
    }

    /// True if this form does not actually depend on the index.
    pub fn is_constant(&self) -> bool {
        match self {
            FittedFn::Const(_) => true,
            FittedFn::Poly(p) => p.is_constant(),
            FittedFn::Trig(t) => t.a == 0.0,
        }
    }

    /// A short tag for reports: `const`, `d1`, `d2`, or `θ`
    /// (matching Table 1's `f` column).
    pub fn kind_tag(&self) -> &'static str {
        match self {
            FittedFn::Const(_) => "const",
            FittedFn::Poly(Poly::Deg1 { .. }) => "d1",
            FittedFn::Poly(Poly::Deg2 { .. }) => "d2",
            FittedFn::Trig(_) => "θ",
        }
    }

    /// Emits the closed form as an expression in the index variable
    /// `Idx(depth)` (0 = `i`, 1 = `j`, 2 = `k`), in the paper's preferred
    /// shapes: `a·(i+1)` when the intercept equals the slope,
    /// `b − a·i` for negative slopes, etc.
    pub fn to_expr(&self, depth: u8) -> Expr {
        let i = Expr::idx(depth);
        match self {
            FittedFn::Const(v) => Expr::num(*v),
            FittedFn::Poly(Poly::Deg1 { a, b }) => linear_expr(*a, *b, i),
            FittedFn::Poly(Poly::Deg2 { a, b, c }) => {
                let sq = Expr::mul(i.clone(), i.clone());
                let quad = mul_coeff(*a, sq);
                let rest = linear_expr(*b, *c, i);
                if rest == Expr::num(0.0) {
                    quad
                } else {
                    Expr::add(quad, rest)
                }
            }
            FittedFn::Trig(t) => {
                let angle = linear_expr(t.b, t.c, i);
                let sine = Expr::sin(angle);
                let scaled = mul_coeff(t.a, sine);
                if t.d == 0.0 {
                    scaled
                } else {
                    Expr::add(Expr::num(t.d), scaled)
                }
            }
        }
    }

    /// The rotation-friendly form `360·(i+o)/m` of §4.1's heuristic:
    /// for degree-1 fits of rotation angles where `360/a` is a whole
    /// number of steps `m`, emits `(/ (* 360 i) m)` (or with `i+1` when
    /// the intercept equals the slope). Returns `None` when the heuristic
    /// does not apply.
    pub fn to_rotation_expr(&self, depth: u8) -> Option<Expr> {
        let FittedFn::Poly(Poly::Deg1 { a, b }) = self else {
            return None;
        };
        if *a == 0.0 {
            return None;
        }
        let m = 360.0 / a;
        if (m - m.round()).abs() > 1e-9 || m.round().abs() < 2.0 {
            return None;
        }
        let m = m.round();
        let i = Expr::idx(depth);
        let numerator = if *b == 0.0 {
            Expr::mul(Expr::num(360.0), i)
        } else if (b - a).abs() < 1e-12 {
            Expr::mul(Expr::num(360.0), Expr::add(i, Expr::num(1.0)))
        } else {
            return None;
        };
        Some(Expr::div(numerator, Expr::num(m)))
    }
}

/// Builds `a·i + b` in a human-friendly shape.
fn linear_expr(a: f64, b: f64, i: Expr) -> Expr {
    if a == 0.0 {
        return Expr::num(b);
    }
    if (b - a).abs() < 1e-12 {
        // a·(i + 1), the paper's favourite spelling.
        return mul_coeff(a, Expr::add(i, Expr::num(1.0)));
    }
    let term = mul_coeff(a.abs(), i);
    if a < 0.0 {
        // b − |a|·i  (e.g. "15 - (10 * i)" in Fig. 18).
        Expr::sub(Expr::num(b), term)
    } else if b == 0.0 {
        term
    } else if b < 0.0 {
        Expr::sub(term, Expr::num(-b))
    } else {
        Expr::add(term, Expr::num(b))
    }
}

/// `coeff · e`, eliding multiplication by 1.
fn mul_coeff(coeff: f64, e: Expr) -> Expr {
    if coeff == 1.0 {
        e
    } else {
        Expr::mul(Expr::num(coeff), e)
    }
}

/// Fits a closed form to `values[i]`, `i = 0..n`, with noise tolerance
/// `eps`, trying the paper's classes in order: constant, degree-1,
/// degree-2, sinusoid. Among admissible forms the earliest (simplest)
/// class wins; the sinusoid requires `R² ≥ 0.999`.
///
/// # Examples
///
/// ```
/// use sz_solver::{fit_sequence, FittedFn};
/// let f = fit_sequence(&[2.0, 4.0, 6.0, 8.0, 10.0], 1e-3).unwrap();
/// assert_eq!(f.to_expr(0).to_string(), "(* 2 (+ i 1))");
/// ```
pub fn fit_sequence(values: &[f64], eps: f64) -> Option<FittedFn> {
    fit_sequence_all(values, eps).into_iter().next()
}

/// Like [`fit_sequence`], but returns **every** admissible closed form,
/// simplest class first. Szalinski inserts a program variant per form so
/// the top-k output is diverse (paper §6.3: the hex-cell generator
/// admits both a nested-loop and a trigonometric program).
pub fn fit_sequence_all(values: &[f64], eps: f64) -> Vec<FittedFn> {
    let mut out = Vec::new();
    if values.is_empty() {
        return out;
    }
    if let Some(v) = fit_const(values, eps) {
        out.push(FittedFn::Const(v));
        // A constant admits no interesting alternative forms.
        return out;
    }
    if let Some(p) = fit_poly1(values, eps) {
        out.push(FittedFn::Poly(p));
    }
    if let Some(p) = fit_poly2(values, eps) {
        out.push(FittedFn::Poly(p));
    }
    if let Some(t) = fit_trig(values, eps) {
        if t.r2 >= 0.999 {
            out.push(FittedFn::Trig(t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_order() {
        assert!(matches!(
            fit_sequence(&[5.0; 6], 1e-3),
            Some(FittedFn::Const(_))
        ));
        assert!(matches!(
            fit_sequence(&[1.0, 3.0, 5.0], 1e-3),
            Some(FittedFn::Poly(Poly::Deg1 { .. }))
        ));
        assert!(matches!(
            fit_sequence(&[0.0, 1.0, 4.0, 9.0], 1e-3),
            Some(FittedFn::Poly(Poly::Deg2 { .. }))
        ));
        let sine: Vec<f64> = (0..8)
            .map(|i| 3.0 * (45.0 * i as f64).to_radians().sin())
            .collect();
        assert!(matches!(fit_sequence(&sine, 1e-3), Some(FittedFn::Trig(_))));
    }

    #[test]
    fn unfittable_returns_none() {
        // A pseudo-random sequence with large spread fits none of the
        // three classes at eps = 1e-3.
        let vals = [3.1, -7.4, 12.9, 0.2, -5.5, 9.9, 1.1, -2.2, 15.0, -11.0];
        assert_eq!(fit_sequence(&vals, 1e-3), None);
    }

    #[test]
    fn expr_shapes() {
        let cases: Vec<(FittedFn, &str)> = vec![
            (FittedFn::Const(125.0), "125"),
            (
                FittedFn::Poly(Poly::Deg1 { a: 2.0, b: 2.0 }),
                "(* 2 (+ i 1))",
            ),
            (FittedFn::Poly(Poly::Deg1 { a: 1.0, b: 0.0 }), "i"),
            (FittedFn::Poly(Poly::Deg1 { a: 4.0, b: 0.0 }), "(* 4 i)"),
            (
                FittedFn::Poly(Poly::Deg1 { a: -10.0, b: 15.0 }),
                "(- 15 (* 10 i))",
            ),
            (
                FittedFn::Poly(Poly::Deg1 { a: 10.0, b: 5.0 }),
                "(+ (* 10 i) 5)",
            ),
            (
                FittedFn::Poly(Poly::Deg1 { a: 2.0, b: -3.0 }),
                "(- (* 2 i) 3)",
            ),
            (
                FittedFn::Poly(Poly::Deg2 {
                    a: 1.5,
                    b: 0.0,
                    c: 2.0,
                }),
                "(+ (* 1.5 (* i i)) 2)",
            ),
        ];
        for (f, want) in cases {
            assert_eq!(f.to_expr(0).to_string(), want);
        }
    }

    #[test]
    fn expr_depth_selects_variable() {
        let f = FittedFn::Poly(Poly::Deg1 { a: 24.0, b: -12.0 });
        assert_eq!(f.to_expr(1).to_string(), "(- (* 24 j) 12)");
    }

    #[test]
    fn trig_expr_shape() {
        let f = FittedFn::Trig(TrigFit {
            a: 7.07,
            b: 90.0,
            c: 315.0,
            d: 10.0,
            r2: 1.0,
        });
        assert_eq!(
            f.to_expr(0).to_string(),
            "(+ 10 (* 7.07 (Sin (+ (* 90 i) 315))))"
        );
    }

    #[test]
    fn rotation_heuristic() {
        // Gear angles 6, 12, 18, ... → 360·(i+1)/60.
        let f = FittedFn::Poly(Poly::Deg1 { a: 6.0, b: 6.0 });
        assert_eq!(
            f.to_rotation_expr(0).unwrap().to_string(),
            "(/ (* 360 (+ i 1)) 60)"
        );
        // Angles 0, 6, 12, ... → 360·i/60.
        let f = FittedFn::Poly(Poly::Deg1 { a: 6.0, b: 0.0 });
        assert_eq!(
            f.to_rotation_expr(0).unwrap().to_string(),
            "(/ (* 360 i) 60)"
        );
        // Non-divisor slopes do not qualify.
        let f = FittedFn::Poly(Poly::Deg1 { a: 7.0, b: 0.0 });
        assert!(f.to_rotation_expr(0).is_none());
        // Constants do not qualify.
        let f = FittedFn::Poly(Poly::Deg1 { a: 0.0, b: 30.0 });
        assert!(f.to_rotation_expr(0).is_none());
    }

    #[test]
    fn fitted_fn_evals_match_expr_semantics() {
        use sz_cad::eval_expr;
        let fns = [
            FittedFn::Const(3.5),
            FittedFn::Poly(Poly::Deg1 { a: 2.0, b: 7.0 }),
            FittedFn::Poly(Poly::Deg2 {
                a: 1.0,
                b: -2.0,
                c: 0.5,
            }),
            FittedFn::Trig(TrigFit {
                a: 2.0,
                b: 45.0,
                c: 30.0,
                d: 1.0,
                r2: 1.0,
            }),
        ];
        for f in fns {
            let e = f.to_expr(0);
            for i in 0..6 {
                let direct = f.eval(i as f64);
                let via_expr = eval_expr(&e, &[i as f64]).unwrap();
                assert!(
                    (direct - via_expr).abs() < 1e-9,
                    "{f:?} at {i}: {direct} vs {via_expr}"
                );
            }
        }
    }
}
