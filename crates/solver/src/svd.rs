//! One-sided Jacobi singular value decomposition for small matrices.
//!
//! This replaces the paper's use of the Owl library: the trigonometric
//! solver's "iterative SVD refinement" needs least-squares solves that are
//! robust to rank deficiency, which the SVD pseudo-inverse provides.

use crate::Mat;

/// The decomposition `A = U · diag(S) · Vᵀ` with `U` column-orthonormal
/// (`m × n`), `S` the singular values (length `n`), and `V` orthogonal
/// (`n × n`). Requires `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × n`.
    pub u: Mat,
    /// Singular values, descending order not guaranteed.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × n`.
    pub v: Mat,
}

/// Computes the SVD of `a` by one-sided Jacobi rotations.
///
/// # Panics
///
/// Panics if `a` has more columns than rows (pad or transpose first).
pub fn svd(a: &Mat) -> Svd {
    let m = a.rows();
    let n = a.cols();
    assert!(m >= n, "one-sided Jacobi SVD requires rows >= cols");

    let mut b = a.clone();
    let mut v = Mat::identity(n);
    let eps = 1e-14;

    for _sweep in 0..60 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    alpha += b[(i, p)] * b[(i, p)];
                    beta += b[(i, q)] * b[(i, q)];
                    gamma += b[(i, p)] * b[(i, q)];
                }
                off = off.max(gamma.abs() / (alpha * beta).sqrt().max(1e-300));
                if gamma.abs() <= eps * (alpha * beta).sqrt() {
                    continue;
                }
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let bp = b[(i, p)];
                    let bq = b[(i, q)];
                    b[(i, p)] = c * bp - s * bq;
                    b[(i, q)] = s * bp + c * bq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < eps {
            break;
        }
    }

    let mut s = Vec::with_capacity(n);
    let mut u = Mat::zeros(m, n);
    for j in 0..n {
        let norm = b.col_norm(j);
        s.push(norm);
        if norm > 0.0 {
            for i in 0..m {
                u[(i, j)] = b[(i, j)] / norm;
            }
        }
    }
    Svd { u, s, v }
}

/// Minimum-norm least-squares solution of `A x ≈ b` via the SVD
/// pseudo-inverse, truncating singular values below `rcond · max(s)`.
///
/// # Panics
///
/// Panics if dimensions mismatch.
pub fn lstsq(a: &Mat, b: &[f64], rcond: f64) -> Vec<f64> {
    assert_eq!(a.rows(), b.len(), "rhs length must match rows");
    let decomposition = svd(a);
    let smax = decomposition
        .s
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let n = a.cols();
    // x = V · diag(1/s) · Uᵀ · b
    let utb: Vec<f64> = (0..n)
        .map(|j| (0..a.rows()).map(|i| decomposition.u[(i, j)] * b[i]).sum())
        .collect();
    let mut x = vec![0.0; n];
    for (j, &utbj) in utb.iter().enumerate() {
        if decomposition.s[j] > rcond * smax {
            let w = utbj / decomposition.s[j];
            for (i, xi) in x.iter_mut().enumerate() {
                *xi += decomposition.v[(i, j)] * w;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(d: &Svd) -> Mat {
        let mut sv = Mat::zeros(d.s.len(), d.s.len());
        for (i, &s) in d.s.iter().enumerate() {
            sv[(i, i)] = s;
        }
        d.u.mul(&sv).mul(&d.v.transpose())
    }

    #[test]
    fn reconstructs_input() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[1.0, 1.0]]);
        let d = svd(&a);
        let r = reconstruct(&d);
        for i in 0..3 {
            for j in 0..2 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn singular_values_of_diagonal() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        let mut s = svd(&a).s;
        s.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!((s[0] - 4.0).abs() < 1e-10);
        assert!((s[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_exact_system() {
        // y = 2x + 1 sampled exactly.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]]);
        let b = [1.0, 3.0, 5.0];
        let x = lstsq(&a, &b, 1e-12);
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_noisy() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = Mat::from_rows(&row_refs);
        let b: Vec<f64> = (0..10)
            .map(|i| 3.0 * i as f64 - 2.0 + if i % 2 == 0 { 1e-4 } else { -1e-4 })
            .collect();
        let x = lstsq(&a, &b, 1e-12);
        assert!((x[0] - 3.0).abs() < 1e-3);
        assert!((x[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn lstsq_rank_deficient_min_norm() {
        // Two identical columns: the min-norm solution splits the weight.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = [2.0, 4.0, 6.0];
        let x = lstsq(&a, &b, 1e-10);
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 1.0).abs() < 1e-8);
    }
}
