//! ε-tolerant polynomial fitting (degrees 1 and 2).
//!
//! This is our substitute for the paper's Z3 queries. The paper encodes
//!
//! ```text
//! (a·i + b) − ε ≤ x_i ≤ (a·i + b) + ε        for all samples (i, x_i)
//! ```
//!
//! in the nonlinear real theory and asks Z3 for `a, b`. We solve the same
//! constraint system directly: least squares gives the Chebyshev-near
//! center of the feasible region for well-conditioned data, coefficients
//! are snapped to nice values, and the ε bound is then **verified** on
//! every sample — any solution we return satisfies exactly the paper's
//! constraints (default ε = 0.001).

use crate::{lstsq, snap, Mat};

/// The default noise tolerance (the paper's ε).
pub const DEFAULT_EPS: f64 = 1e-3;

/// A fitted polynomial `x(i) = a·i + b` (degree 1) or
/// `x(i) = a·i² + b·i + c` (degree 2) satisfying the ε constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Poly {
    /// Degree-1 polynomial `a·i + b`.
    Deg1 {
        /// Slope.
        a: f64,
        /// Intercept.
        b: f64,
    },
    /// Degree-2 polynomial `a·i² + b·i + c` with `a ≠ 0`.
    Deg2 {
        /// Quadratic coefficient.
        a: f64,
        /// Linear coefficient.
        b: f64,
        /// Constant coefficient.
        c: f64,
    },
}

impl Poly {
    /// Evaluates the polynomial at index `i`.
    pub fn eval(&self, i: f64) -> f64 {
        match *self {
            Poly::Deg1 { a, b } => a * i + b,
            Poly::Deg2 { a, b, c } => a * i * i + b * i + c,
        }
    }

    /// The polynomial degree (1 or 2).
    pub fn degree(&self) -> u8 {
        match self {
            Poly::Deg1 { .. } => 1,
            Poly::Deg2 { .. } => 2,
        }
    }

    /// True if this is a constant function (`a = 0` for degree 1).
    pub fn is_constant(&self) -> bool {
        matches!(self, Poly::Deg1 { a, .. } if *a == 0.0)
    }
}

/// Checks the paper's ε constraint: every sample within `eps` of the model.
/// A hair of relative slack absorbs decimal-literal rounding (`5.001` is
/// not exactly representable, so its residual against `5.0` can exceed
/// `1e-3` by a few ulps).
fn verify(values: &[f64], eps: f64, f: impl Fn(f64) -> f64) -> bool {
    values.iter().enumerate().all(|(i, &x)| {
        let slack = eps + 1e-9 * (1.0 + x.abs());
        (f(i as f64) - x).abs() <= slack
    })
}

/// Fits `a·i + b` over `values[i]` (indices `0..n`), requiring every
/// residual within `eps`. Coefficients are snapped to nice values when the
/// snapped model still verifies.
///
/// Returns `None` if no degree-1 polynomial satisfies the constraints.
///
/// # Examples
///
/// ```
/// use sz_solver::fit_poly1;
/// // The paper's noisy example: 5.001, 10.00001, 14.9998, 20.0 → 5·(i+1).
/// let fit = fit_poly1(&[5.001, 10.00001, 14.9998, 20.0], 1e-3).unwrap();
/// assert_eq!(fit, sz_solver::Poly::Deg1 { a: 5.0, b: 5.0 });
/// ```
pub fn fit_poly1(values: &[f64], eps: f64) -> Option<Poly> {
    if values.is_empty() {
        return None;
    }
    if values.len() == 1 {
        let b = snap(values[0], eps);
        return Some(Poly::Deg1 { a: 0.0, b });
    }
    let rows: Vec<Vec<f64>> = (0..values.len()).map(|i| vec![i as f64, 1.0]).collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let a_mat = Mat::from_rows(&row_refs);
    let sol = lstsq(&a_mat, values, 1e-12);
    let (a, b) = (sol[0], sol[1]);

    // Prefer fully snapped, then partially snapped, then raw coefficients.
    let candidates = [
        (snap(a, 2.0 * eps), snap(b, 2.0 * eps)),
        (snap(a, 2.0 * eps), b),
        (a, snap(b, 2.0 * eps)),
        (a, b),
    ];
    for (a, b) in candidates {
        if verify(values, eps, |i| a * i + b) {
            return Some(Poly::Deg1 { a, b });
        }
    }
    None
}

/// Fits `a·i² + b·i + c` over `values[i]`, requiring every residual within
/// `eps` and a genuinely quadratic term (`|a|` above noise); use
/// [`fit_poly1`] for affine data.
///
/// A quadratic interpolates *any* 3 points, so short sequences
/// (fewer than 5 samples) are accepted only when all three coefficients
/// are "nice" (integers / small rationals, per [`crate::is_nice`]) —
/// designed spacings like `2i² + 3i + 10` qualify, arbitrary scatter does
/// not. This mirrors the short-sequence gate of the trigonometric solver.
///
/// Returns `None` if no such polynomial exists.
pub fn fit_poly2(values: &[f64], eps: f64) -> Option<Poly> {
    if values.len() < 3 {
        return None;
    }
    let rows: Vec<Vec<f64>> = (0..values.len())
        .map(|i| {
            let i = i as f64;
            vec![i * i, i, 1.0]
        })
        .collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    let a_mat = Mat::from_rows(&row_refs);
    let sol = lstsq(&a_mat, values, 1e-12);
    let (a, b, c) = (sol[0], sol[1], sol[2]);

    let candidates = [
        (snap(a, 2.0 * eps), snap(b, 2.0 * eps), snap(c, 2.0 * eps)),
        (snap(a, 2.0 * eps), snap(b, 2.0 * eps), c),
        (a, b, c),
    ];
    // With ≤ 4 samples a quadratic has at most one spare point of
    // evidence; demand interpretable coefficients there so arbitrary
    // triples/quadruples don't masquerade as designs.
    let low_evidence = values.len() < 5;
    for &(a, b, c) in &candidates {
        if low_evidence
            && !(crate::is_nice(a, 1e-9) && crate::is_nice(b, 1e-9) && crate::is_nice(c, 1e-9))
        {
            continue;
        }
        // The quadratic term must rise above the noise floor, otherwise
        // the data is affine and fit_poly1's verdict stands.
        if a.abs() > eps && verify(values, eps, |i| a * i * i + b * i + c) {
            return Some(Poly::Deg2 { a, b, c });
        }
    }
    None
}

/// Fits a constant: all values within `eps` of a common (snapped) value.
pub fn fit_const(values: &[f64], eps: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    [snap(mean, 2.0 * eps), mean]
        .into_iter()
        .find(|&cand| values.iter().all(|&x| (x - cand).abs() <= eps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear() {
        let vals: Vec<f64> = (0..5).map(|i| 2.0 * i as f64 + 2.0).collect();
        assert_eq!(
            fit_poly1(&vals, DEFAULT_EPS),
            Some(Poly::Deg1 { a: 2.0, b: 2.0 })
        );
    }

    #[test]
    fn paper_noisy_example() {
        // §4.1: [(0,5.001); (1,10.00001); (2,14.9998); (3,20.0)] → 5(i+1).
        let fit = fit_poly1(&[5.001, 10.00001, 14.9998, 20.0], 1e-3).unwrap();
        assert_eq!(fit, Poly::Deg1 { a: 5.0, b: 5.0 });
    }

    #[test]
    fn rejects_non_linear() {
        assert_eq!(fit_poly1(&[0.0, 1.0, 4.0, 9.0], 1e-3), None);
    }

    #[test]
    fn quadratic_fit() {
        let vals: Vec<f64> = (0..6)
            .map(|i| {
                let i = i as f64;
                1.5 * i * i - 2.0 * i + 3.0
            })
            .collect();
        assert_eq!(
            fit_poly2(&vals, DEFAULT_EPS),
            Some(Poly::Deg2 {
                a: 1.5,
                b: -2.0,
                c: 3.0
            })
        );
    }

    #[test]
    fn quadratic_with_noise() {
        let vals: Vec<f64> = (0..6)
            .map(|i| {
                let i = i as f64;
                let noise = if (i as usize).is_multiple_of(2) {
                    4e-4
                } else {
                    -4e-4
                };
                i * i + noise
            })
            .collect();
        let fit = fit_poly2(&vals, 1e-3).unwrap();
        assert_eq!(
            fit,
            Poly::Deg2 {
                a: 1.0,
                b: 0.0,
                c: 0.0
            }
        );
    }

    #[test]
    fn quadratic_rejects_linear_data() {
        // Degree-2 fit on affine data must not fabricate a quadratic term.
        let vals: Vec<f64> = (0..6).map(|i| 3.0 * i as f64 + 1.0).collect();
        assert_eq!(fit_poly2(&vals, 1e-3), None);
    }

    #[test]
    fn constants() {
        assert_eq!(fit_const(&[1.0001, 0.9999, 1.0], 1e-3), Some(1.0));
        assert_eq!(fit_const(&[1.0, 2.0], 1e-3), None);
        assert_eq!(fit_const(&[125.0; 60], 1e-3), Some(125.0));
    }

    #[test]
    fn single_sample_is_constant() {
        assert_eq!(
            fit_poly1(&[7.0], DEFAULT_EPS),
            Some(Poly::Deg1 { a: 0.0, b: 7.0 })
        );
    }

    #[test]
    fn eps_is_a_hard_bound() {
        // One outlier beyond eps must sink the fit.
        let mut vals: Vec<f64> = (0..8).map(|i| i as f64).collect();
        vals[4] += 0.01;
        assert_eq!(fit_poly1(&vals, 1e-3), None);
        assert!(fit_poly1(&vals, 0.02).is_some());
    }

    #[test]
    fn negative_slopes() {
        let vals: Vec<f64> = (0..5).map(|i| 15.0 - 10.0 * i as f64).collect();
        assert_eq!(
            fit_poly1(&vals, DEFAULT_EPS),
            Some(Poly::Deg1 { a: -10.0, b: 15.0 })
        );
    }
}
