//! # sz-solver: arithmetic function solvers
//!
//! Szalinski's "arithmetic component": given lists of concrete vector
//! components extracted from the e-graph, find editable **closed forms**
//! (paper §4.1). Three model classes are supported, exactly as in the
//! paper:
//!
//! 1. degree-1 polynomials `a·i + b` — [`fit_poly1`];
//! 2. degree-2 polynomials `a·i² + b·i + c` — [`fit_poly2`];
//! 3. sinusoids `a·sin(b·i + c) + d` (degrees) — [`fit_trig`].
//!
//! The paper solves (1)–(2) with Z3 under an explicit noise tolerance
//! (`|model(i) − x_i| ≤ ε`, ε = 0.001) and (3) with nonlinear least
//! squares on top of the Owl library. Both external dependencies are
//! replaced here by self-contained implementations with the same
//! contracts: least squares via a one-sided Jacobi [`svd`], hard ε
//! *verification* of every returned polynomial, and a frequency-scan +
//! Gauss–Newton sine fitter selected by the coefficient of determination
//! ([`r_squared`]), with parameter snapping ([`snap`], [`snap_angle`]) so
//! results stay human-editable.
//!
//! [`fit_sequence`] performs the paper's model selection and
//! [`FittedFn::to_expr`] emits the result as a LambdaCAD expression
//! (including the `360·(i+1)/b` rotation heuristic via
//! [`FittedFn::to_rotation_expr`]).
//!
//! ## Example
//!
//! ```
//! use sz_solver::fit_sequence;
//! // Noisy decompiler output, recovered as 5·(i+1):
//! let f = fit_sequence(&[5.001, 10.00001, 14.9998, 20.0], 1e-3).unwrap();
//! assert_eq!(f.to_expr(0).to_string(), "(* 5 (+ i 1))");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fit;
mod mat;
mod poly;
mod snap;
mod svd;
mod trig;

pub use fit::{fit_sequence, fit_sequence_all, FittedFn};
pub use mat::Mat;
pub use poly::{fit_const, fit_poly1, fit_poly2, Poly, DEFAULT_EPS};
pub use snap::{is_nice, snap, snap_angle, snap_rational};
pub use svd::{lstsq, svd, Svd};
pub use trig::{fit_trig, r_squared, TrigFit};
