//! Small dense matrices (row-major), sized for the tiny regression systems
//! Szalinski's solvers produce (tens of rows, 2–4 columns).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use sz_solver::Mat;
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::identity(2);
/// assert_eq!(a.mul(&b), a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Mat {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut m = Mat::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            for (j, &x) in row.iter().enumerate() {
                m[(i, j)] = x;
            }
        }
        m
    }

    /// A column vector from a slice.
    pub fn col_vec(v: &[f64]) -> Mat {
        let mut m = Mat::zeros(v.len(), 1);
        for (i, &x) in v.iter().enumerate() {
            m[(i, 0)] = x;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// The column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Euclidean norm of column `j`.
    pub fn col_norm(&self, j: usize) -> f64 {
        self.col(j).iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.mul(&Mat::identity(3)), a);
        assert_eq!(Mat::identity(2).mul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 2);
    }

    #[test]
    fn mul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn col_helpers() {
        let a = Mat::from_rows(&[&[3.0, 0.0], &[4.0, 1.0]]);
        assert_eq!(a.col(0), vec![3.0, 4.0]);
        assert!((a.col_norm(0) - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_checks_dims() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
