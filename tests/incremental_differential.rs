//! The snapshot differential harness: over the paper's 16-model suite
//! and property-generated flat CSG, a run resumed from an e-graph
//! snapshot must emit **byte-identical** programs to the cold run while
//! spending **zero** saturation iterations, and snapshot compatibility
//! must follow the saturation/extraction fingerprint split (cost-only
//! config changes reuse snapshots; rule-set changes invalidate them).

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use proptest::prelude::*;
use sz_cad::{AffineKind, Cad};
use szalinski::{
    resume_synthesize, synthesize, synthesize_with_snapshot, CostKind, ResumeError, SynthConfig,
    SynthSnapshot, Synthesis,
};

fn config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

/// The byte-level identity of a synthesis result: costs plus printed
/// programs, in rank order.
fn programs(s: &Synthesis) -> Vec<(usize, String)> {
    s.top_k
        .iter()
        .map(|p| (p.cost, p.cad.to_string()))
        .collect()
}

/// Table rows compared field-by-field except wall-clock time.
fn assert_rows_identical(a: &Synthesis, b: &Synthesis, name: &str) {
    let (ra, rb) = (a.table_row(name), b.table_row(name));
    assert_eq!(ra.i_ns, rb.i_ns, "{name}: i_ns");
    assert_eq!(ra.o_ns, rb.o_ns, "{name}: o_ns");
    assert_eq!(ra.i_p, rb.i_p, "{name}: i_p");
    assert_eq!(ra.o_p, rb.o_p, "{name}: o_p");
    assert_eq!(ra.i_d, rb.i_d, "{name}: i_d");
    assert_eq!(ra.o_d, rb.o_d, "{name}: o_d");
    assert_eq!(ra.n_l, rb.n_l, "{name}: n_l");
    assert_eq!(ra.f, rb.f, "{name}: f");
    assert_eq!(ra.rank, rb.rank, "{name}: rank");
}

#[test]
fn suite16_resumed_equals_cold() {
    for model in sz_models::all_models() {
        let (cold, snapshot) = synthesize_with_snapshot(&model.flat, &config());
        // Round-trip through text: exactly what the cache tier stores.
        let snapshot: SynthSnapshot = snapshot
            .to_string()
            .parse()
            .unwrap_or_else(|e| panic!("{}: snapshot text must reparse: {e}", model.name));
        let resumed = resume_synthesize(&model.flat, &config(), &snapshot).unwrap();

        assert_eq!(
            programs(&resumed),
            programs(&cold),
            "{}: resumed top-k must be byte-identical",
            model.name
        );
        assert_rows_identical(&resumed, &cold, model.name);
        assert_eq!(resumed.iterations, 0, "{}: no re-saturation", model.name);
        assert!(
            resumed.iterations < cold.iterations,
            "{}: resumed must spend strictly fewer iterations (cold spent {})",
            model.name,
            cold.iterations
        );
        assert_eq!(resumed.egraph_nodes, cold.egraph_nodes, "{}", model.name);
        assert_eq!(
            resumed.egraph_classes, cold.egraph_classes,
            "{}",
            model.name
        );
    }
}

#[test]
fn suite16_cost_only_change_reuses_snapshots() {
    // Snapshot under the default cost, resume under RewardLoops: every
    // model must accept the snapshot (100% tier compatibility) and match
    // a cold RewardLoops run program-for-program.
    for model in sz_models::all_models().into_iter().take(4) {
        let (_, snapshot) = synthesize_with_snapshot(&model.flat, &config());
        let reward = config().with_cost(CostKind::RewardLoops).with_k(3);
        let resumed = resume_synthesize(&model.flat, &reward, &snapshot)
            .unwrap_or_else(|e| panic!("{}: cost-only change must resume: {e}", model.name));
        assert_eq!(resumed.iterations, 0);
        let cold = synthesize(&model.flat, &reward);
        assert_eq!(
            programs(&resumed),
            programs(&cold),
            "{}: resumed extraction under the new cost must equal cold",
            model.name
        );
    }
}

#[test]
fn suite16_rule_set_change_invalidates_snapshots() {
    for model in sz_models::all_models().into_iter().take(4) {
        let (_, snapshot) = synthesize_with_snapshot(&model.flat, &config());
        for changed in [
            config().with_structural_rules(true),
            config().with_eps(1e-2),
            config().with_iter_limit(61),
        ] {
            assert_eq!(
                resume_synthesize(&model.flat, &changed, &snapshot).unwrap_err(),
                ResumeError::ConfigMismatch,
                "{}: saturation-affecting change must invalidate",
                model.name
            );
        }
    }
}

/// A strategy for random *flat* CSG terms of bounded size (mirrors
/// `tests/proptests.rs`).
fn arb_flat_cad() -> impl Strategy<Value = Cad> {
    let leaf = prop_oneof![
        Just(Cad::Unit),
        Just(Cad::Sphere),
        Just(Cad::Cylinder),
        Just(Cad::Hexagon),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(AffineKind::Translate),
                    Just(AffineKind::Scale),
                    Just(AffineKind::Rotate)
                ],
                -4.0f64..4.0,
                -4.0f64..4.0,
                -4.0f64..4.0,
                inner.clone()
            )
                .prop_map(|(kind, x, y, z, c)| {
                    let v = match kind {
                        AffineKind::Scale => [x.abs() + 0.5, y.abs() + 0.5, z.abs() + 0.5],
                        AffineKind::Rotate => [0.0, 0.0, x * 45.0],
                        AffineKind::Translate => [x, y, z],
                    };
                    Cad::Affine(kind, v.into(), Box::new(c))
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cad::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Cad::diff(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_flat_cad_resumed_equals_cold(input in arb_flat_cad()) {
        let config = SynthConfig::new()
            .with_iter_limit(12)
            .with_node_limit(20_000);
        let (cold, snapshot) = synthesize_with_snapshot(&input, &config);
        let snapshot: SynthSnapshot = snapshot.to_string().parse().unwrap();
        let resumed = resume_synthesize(&input, &config, &snapshot).unwrap();
        prop_assert_eq!(programs(&resumed), programs(&cold));
        prop_assert_eq!(resumed.iterations, 0);
        prop_assert!(cold.iterations > 0);
        prop_assert_eq!(resumed.egraph_nodes, cold.egraph_nodes);
        prop_assert_eq!(resumed.egraph_classes, cold.egraph_classes);
    }
}
