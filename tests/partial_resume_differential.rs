//! The partial-saturation-resume differential harness: over the paper's
//! 16-model suite and property-generated flat CSG, a run that restores a
//! **lower-fuel** snapshot and *continues* saturating under a higher
//! fuel limit must emit **byte-identical** programs to a cold run at the
//! higher fuel, while spending **strictly fewer** saturation iterations
//! on the resumed leg. This is the proof behind
//! `Synthesizer::run`'s third dispatch mode (ISSUE 4 / the ROADMAP's
//! "resume *partial* saturation" open item).
//!
//! Soundness argument being tested: two configs with equal
//! `saturation_core_fingerprint`s walk the *same deterministic
//! trajectory* of iteration-boundary states; a snapshot taken under
//! tighter limits is a point on that trajectory, and `Snapshot::restore`
//! reproduces it exactly (same canonical ids), so continuing from it is
//! indistinguishable from never having stopped.

use proptest::prelude::*;
use sz_cad::{AffineKind, Cad};
use szalinski::{RunMode, RunOptions, SynthConfig, SynthSnapshot, Synthesis, Synthesizer};

fn high_config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

fn low_config() -> SynthConfig {
    // Low enough that non-trivial models genuinely stop early (so the
    // resumed leg has real work left), high enough to be cheap.
    high_config().with_iter_limit(4)
}

/// The byte-level identity of a synthesis result: costs plus printed
/// programs, in rank order.
fn programs(s: &Synthesis) -> Vec<(usize, String)> {
    s.top_k
        .iter()
        .map(|p| (p.cost, p.cad.to_string()))
        .collect()
}

/// Snapshot `input` at low fuel (round-tripping through text, exactly
/// what a cache stores), then compare cold-at-high-fuel against
/// resume-and-continue-at-high-fuel.
fn assert_partial_resume_matches_cold(input: &Cad, name: &str) {
    let low = Synthesizer::new(low_config());
    let captured = low
        .run(input, RunOptions::new().capture_snapshot(true))
        .unwrap_or_else(|e| panic!("{name}: low-fuel run failed: {e}"));
    let snapshot: SynthSnapshot = captured
        .snapshot
        .as_ref()
        .expect("capture requested")
        .to_string()
        .parse()
        .unwrap_or_else(|e| panic!("{name}: snapshot text must reparse: {e}"));
    assert!(
        snapshot.supports_partial_resume(&high_config()),
        "{name}: a low-fuel snapshot must be continuable at high fuel"
    );

    let high = Synthesizer::new(high_config());
    let cold = high.run(input, RunOptions::new()).unwrap();
    let resumed = high
        .run(input, RunOptions::new().with_snapshot(snapshot))
        .unwrap();

    assert_eq!(
        resumed.mode,
        RunMode::ResumedSaturation,
        "{name}: dispatch must pick partial resume, not cold"
    );
    assert_eq!(
        programs(&resumed),
        programs(&cold),
        "{name}: resumed-and-continued top-k must be byte-identical to cold"
    );
    // The acceptance bar is the *emitted OpenSCAD*: byte-identical too.
    match (
        sz_scad::cad_to_scad(&cold.best().cad),
        sz_scad::cad_to_scad(&resumed.best().cad),
    ) {
        (Ok(cold_scad), Ok(resumed_scad)) => assert_eq!(
            resumed_scad, cold_scad,
            "{name}: emitted OpenSCAD must be byte-identical"
        ),
        (cold_scad, resumed_scad) => assert_eq!(
            cold_scad.is_ok(),
            resumed_scad.is_ok(),
            "{name}: emission must agree on failure too"
        ),
    }
    assert_eq!(resumed.egraph_nodes, cold.egraph_nodes, "{name}: nodes");
    assert_eq!(
        resumed.egraph_classes, cold.egraph_classes,
        "{name}: classes"
    );
    assert!(
        resumed.iterations < cold.iterations || cold.iterations <= 1,
        "{name}: resumed leg ({}) must spend strictly fewer iterations than cold ({})",
        resumed.iterations,
        cold.iterations
    );
    // Lifetime accounting: prior (low) + resumed leg covers at least
    // what cold spent (the quiet-iteration case on already-saturated
    // graphs can add one).
    assert!(
        captured.iterations + resumed.iterations >= cold.iterations,
        "{name}: lifetime iterations ({} + {}) cannot undercut cold ({})",
        captured.iterations,
        resumed.iterations,
        cold.iterations
    );
}

#[test]
fn suite16_partial_resume_equals_cold() {
    for model in sz_models::all_models() {
        assert_partial_resume_matches_cold(&model.flat, model.name);
    }
}

#[test]
fn partial_resume_rechains_through_recapture() {
    // Resume from fuel 2 → capture at fuel 8 → resume that at fuel 60:
    // snapshots produced by partial resumes are themselves resumable.
    let flat = Cad::union_chain(
        (1..=6)
            .map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit))
            .collect(),
    );
    let base = high_config();
    let s2 = Synthesizer::new(base.clone().with_iter_limit(2));
    let snap2 = s2
        .run(&flat, RunOptions::new().capture_snapshot(true))
        .unwrap()
        .snapshot
        .unwrap();

    let s8 = Synthesizer::new(base.clone().with_iter_limit(8));
    let mid = s8
        .run(
            &flat,
            RunOptions::new()
                .with_snapshot(snap2)
                .capture_snapshot(true),
        )
        .unwrap();
    assert_eq!(mid.mode, RunMode::ResumedSaturation);
    let snap8 = mid.snapshot.unwrap();

    let s60 = Synthesizer::new(base);
    let cold = s60.run(&flat, RunOptions::new()).unwrap();
    let final_run = s60
        .run(&flat, RunOptions::new().with_snapshot(snap8))
        .unwrap();
    assert_eq!(final_run.mode, RunMode::ResumedSaturation);
    assert_eq!(programs(&final_run), programs(&cold));
}

/// A strategy for random *flat* CSG terms of bounded size (mirrors
/// `tests/incremental_differential.rs`).
fn arb_flat_cad() -> impl Strategy<Value = Cad> {
    let leaf = prop_oneof![
        Just(Cad::Unit),
        Just(Cad::Sphere),
        Just(Cad::Cylinder),
        Just(Cad::Hexagon),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(AffineKind::Translate),
                    Just(AffineKind::Scale),
                    Just(AffineKind::Rotate)
                ],
                -4.0f64..4.0,
                -4.0f64..4.0,
                -4.0f64..4.0,
                inner.clone()
            )
                .prop_map(|(kind, x, y, z, c)| {
                    let v = match kind {
                        AffineKind::Scale => [x.abs() + 0.5, y.abs() + 0.5, z.abs() + 0.5],
                        AffineKind::Rotate => [0.0, 0.0, x * 45.0],
                        AffineKind::Translate => [x, y, z],
                    };
                    Cad::Affine(kind, v.into(), Box::new(c))
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cad::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Cad::diff(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_flat_cad_partial_resume_equals_cold(input in arb_flat_cad()) {
        let base = SynthConfig::new().with_iter_limit(12).with_node_limit(20_000);
        let low = Synthesizer::new(base.clone().with_iter_limit(2));
        let snapshot = low
            .run(&input, RunOptions::new().capture_snapshot(true))
            .unwrap()
            .snapshot
            .unwrap();
        let high = Synthesizer::new(base);
        let cold = high.run(&input, RunOptions::new()).unwrap();
        let resumed = high
            .run(&input, RunOptions::new().with_snapshot(snapshot))
            .unwrap();
        prop_assert_eq!(resumed.mode, RunMode::ResumedSaturation);
        prop_assert_eq!(programs(&resumed), programs(&cold));
        prop_assert_eq!(resumed.egraph_nodes, cold.egraph_nodes);
        prop_assert_eq!(resumed.egraph_classes, cold.egraph_classes);
        prop_assert!(resumed.iterations < cold.iterations || cold.iterations <= 1);
    }
}
