//! VM-vs-naive e-matching differential over the *real* rule set: for
//! every rule in [`szalinski::all_rules`] (the full Fig. 8 set plus the
//! structural boolean laws), the compiled e-matching program inside the
//! rewrite must produce exactly the same `SearchMatches` — same classes,
//! same substitution sets, same binding order — as the retained naive
//! reference matcher ([`Pattern::search`]), on proptest-generated CAD
//! graphs and on partially saturated paper models.
//!
//! This is the workspace-level guarantee behind the compiled-e-matching
//! refactor: any divergence between the two matchers is a bug in the VM,
//! the operator index, or the naive oracle, and shows up here as a
//! failing rule name. CI runs this suite in the `ematch-differential`
//! job (alongside an engine-level run with `sz-egraph/naive-ematch`).

use proptest::prelude::*;
use sz_cad::{AffineKind, Cad};
use sz_egraph::{Id, Runner, Subst};
use szalinski::{all_rules, cad_to_lang, CadAnalysis, CadGraph};

/// Asserts that every rule's compiled searcher agrees with the naive
/// pattern matcher on `egraph`.
fn assert_all_rules_agree(egraph: &CadGraph, context: &str) {
    for rule in all_rules() {
        // The retained naive reference matcher walks the raw pattern...
        let mut naive: Vec<(Id, Vec<Subst>)> = rule
            .searcher()
            .search(egraph)
            .into_iter()
            .map(|m| (m.eclass, m.substs))
            .collect();
        // ...while the rewrite itself executes its compiled program over
        // the operator index.
        let mut vm: Vec<(Id, Vec<Subst>)> = rule
            .search(egraph)
            .into_iter()
            .map(|m| (m.eclass, m.substs))
            .collect();
        naive.sort_by_key(|(id, _)| *id);
        vm.sort_by_key(|(id, _)| *id);
        assert_eq!(
            naive,
            vm,
            "matcher divergence for rule `{}` on {context}",
            rule.name()
        );
    }
}

/// Saturates `cad` for `iters` iterations and returns the (clean)
/// e-graph.
fn saturated_graph(cad: &Cad, iters: usize, node_limit: usize) -> CadGraph {
    let expr = cad_to_lang(cad);
    let runner = Runner::new(CadAnalysis)
        .with_expr(&expr)
        .with_iter_limit(iters)
        .with_node_limit(node_limit)
        .run(&all_rules());
    runner.egraph
}

/// A strategy for random *flat* CSG terms of bounded size (the same
/// shape `tests/proptests.rs` uses for rewrite soundness).
fn arb_flat_cad() -> impl Strategy<Value = Cad> {
    let leaf = prop_oneof![
        Just(Cad::Unit),
        Just(Cad::Sphere),
        Just(Cad::Cylinder),
        Just(Cad::Hexagon),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(AffineKind::Translate),
                    Just(AffineKind::Scale),
                    Just(AffineKind::Rotate)
                ],
                -4.0f64..4.0,
                -4.0f64..4.0,
                -4.0f64..4.0,
                inner.clone()
            )
                .prop_map(|(kind, x, y, z, c)| {
                    let v = match kind {
                        AffineKind::Scale => [x.abs() + 0.5, y.abs() + 0.5, z.abs() + 0.5],
                        AffineKind::Rotate => [0.0, 0.0, x * 45.0],
                        AffineKind::Translate => [x, y, z],
                    };
                    Cad::Affine(kind, v.into(), Box::new(c))
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cad::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Cad::diff(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_matches_naive_on_random_cads(
        cad in arb_flat_cad(),
        iters in 0usize..4,
    ) {
        let egraph = saturated_graph(&cad, iters, 10_000);
        assert_all_rules_agree(&egraph, &format!("{cad} after {iters} iterations"));
    }
}

#[test]
fn compiled_matches_naive_on_unsaturated_paper_models() {
    // Fresh graphs (no saturation) for every suite16 model: cheap, and
    // exercises every operator the real corpus contains.
    for model in sz_models::all_models() {
        let egraph = saturated_graph(&model.flat, 0, 10_000);
        assert_all_rules_agree(&egraph, model.name);
    }
}

#[test]
fn compiled_matches_naive_on_partially_saturated_models() {
    // A few representative models, saturated deep enough for folds,
    // collapses, and reorders to populate multi-node classes.
    for name in ["3171605:card-org", "510849:wardrobe", "3362402:gear"] {
        let model = sz_models::all_models()
            .into_iter()
            .find(|m| m.name == name)
            .expect("paper model exists");
        for iters in [2, 6] {
            let egraph = saturated_graph(&model.flat, iters, 30_000);
            assert_all_rules_agree(&egraph, &format!("{name} after {iters} iterations"));
        }
    }
}

#[test]
fn every_rule_fires_somewhere_on_the_suite() {
    // Smoke version of CI's zero-match gate: across the whole suite at
    // shallow saturation, the core rule families must find matches (a
    // broken matcher that returns nothing everywhere would otherwise
    // still pass the differential if the oracle broke identically).
    let mut matched: std::collections::HashSet<String> = std::collections::HashSet::new();
    for model in sz_models::all_models() {
        let egraph = saturated_graph(&model.flat, 3, 20_000);
        for rule in all_rules() {
            if !rule.search(&egraph).is_empty() {
                matched.insert(rule.name().to_owned());
            }
        }
    }
    for expected in [
        "lift-scale-union",
        "reorder-rotate-translate",
        "collapse-translate",
        "fold-intro-union",
        "union-comm",
    ] {
        assert!(
            matched.contains(expected),
            "rule `{expected}` matched nowhere on the suite; matched = {matched:?}"
        );
    }
}
