//! The generated-corpus determinism contract, checked end to end at
//! the workspace level: the same `(seed, spec)` pair must produce a
//! byte-identical corpus on every run, and sharding must be a pure
//! partition — a 4-way `szb --shard`-style split, reassembled by model
//! index, is the unsharded corpus, byte for byte.
//!
//! These are the properties the CI `corpus-soak` job re-checks with the
//! real binaries (`szgen` twice + `diff -r`, sharded `szb --gen` +
//! `szb merge`); here they run under proptest over random specs so the
//! guarantee is not an artifact of one blessed seed.

use proptest::prelude::*;
use szalinski_repro::sz_batch::{gen_jobs, ShardSpec};
use szalinski_repro::sz_gen::{generate_model, model_name, models, GenSpec};
use szalinski_repro::szalinski::SynthConfig;

/// A strategy over spec *strings*, so the test also exercises the
/// parser on every case and the failure output prints a value you can
/// paste straight into `szgen --spec`.
fn arb_spec() -> impl Strategy<Value = GenSpec> {
    (
        1usize..40,
        0u64..u64::MAX,
        1usize..3,
        2usize..4,
        3usize..6,
        prop_oneof![Just(0.0f64), 0.0001f64..0.01],
    )
        .prop_map(|(count, seed, s_lo, s_hi, a_lo, noise)| {
            let spec = format!(
                "count={count},seed={seed},secs={s_lo}..{s_hi},arity={a_lo}..{},noise={noise}",
                a_lo + 3
            );
            spec.parse::<GenSpec>().expect("generated spec is valid")
        })
}

/// Renders the whole corpus as one string: `name` plus the csexp of
/// each model, in index order. Byte equality of two renderings is the
/// determinism contract.
fn render_corpus(spec: &GenSpec) -> String {
    let mut out = String::new();
    for m in models(spec) {
        out.push_str(&m.name);
        out.push('\n');
        out.push_str(&m.cad.to_string());
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_and_spec_is_byte_identical(spec in arb_spec()) {
        prop_assert_eq!(render_corpus(&spec), render_corpus(&spec));
    }

    #[test]
    fn canonical_spec_roundtrips_to_the_same_corpus(spec in arb_spec()) {
        // The canonical string is the corpus identity embedded in
        // manifests: re-parsing it must regenerate the same bytes.
        let reparsed: GenSpec = spec.canonical().parse().unwrap();
        prop_assert_eq!(render_corpus(&reparsed), render_corpus(&spec));
    }

    #[test]
    fn four_way_shard_split_reassembles_by_index(spec in arb_spec()) {
        let config = SynthConfig::new();
        let (reference, zero_dropped) = gen_jobs(&spec, &config, None);
        prop_assert_eq!(zero_dropped, 0);
        prop_assert_eq!(reference.len(), spec.count);

        // Run the 4 shards independently (each pays generation cost
        // only for the indices it owns), then reassemble by index.
        let mut merged: Vec<Option<(String, String)>> = vec![None; spec.count];
        let mut dropped_total = 0;
        for index in 1..=4 {
            let shard = ShardSpec { index, count: 4 };
            let (jobs, dropped) = gen_jobs(&spec, &config, Some(shard));
            dropped_total += dropped;
            for job in jobs {
                let slot = (0..spec.count)
                    .find(|&i| model_name(spec.seed, i) == job.name)
                    .expect("job name maps back to an index");
                prop_assert!(merged[slot].is_none(), "index owned by two shards");
                merged[slot] = Some((job.name, job.input.to_string()));
            }
        }
        // Every index owned exactly once; drops account for the rest.
        prop_assert_eq!(dropped_total, 3 * spec.count);
        for (i, (slot, want)) in merged.iter().zip(&reference).enumerate() {
            let (name, csexp) = slot.as_ref().expect("every index owned by some shard");
            prop_assert_eq!(name, &want.name, "index {}", i);
            prop_assert_eq!(csexp, &want.input.to_string(), "index {}", i);
        }
    }

    #[test]
    fn models_are_independent_of_generation_order(spec in arb_spec()) {
        // Generating model i alone equals model i from the full stream:
        // no hidden state threads between indices (the property that
        // makes sharded generation coherent at all).
        let streamed: Vec<_> = models(&spec).collect();
        for i in (0..spec.count).rev() {
            prop_assert_eq!(&streamed[i].cad, &generate_model(&spec, i));
        }
    }
}
