//! Golden-file tests for the pipeline-level snapshot format
//! (`szsynth v3` wrapping `szsnap v1`, with an optional saturation-phase
//! section carrying persisted per-rule counts): the checked-in fixtures
//! pin the exact bytes, so any serialization change forces a
//! format-version bump (guarding the batch cache against cross-release
//! poisoning).

use std::path::Path;

use sz_cad::Cad;
use sz_egraph::{RuleStat, Snapshot, SNAPSHOT_FORMAT_VERSION};
use szalinski::{cad_to_lang, CadAnalysis, CadGraph, SatPhase, SynthConfig, SynthSnapshot};

/// Builds a `SynthSnapshot` deterministically: the input is loaded into
/// the e-graph but no rules run (rule search iterates hash maps, whose
/// order — and hence id assignment — varies between processes).
fn deterministic_snapshot() -> (SynthSnapshot, String) {
    let input: Cad = "(Union (Translate 2 0 0 Unit) (Translate 4 0 0 Unit))"
        .parse()
        .unwrap();
    let mut egraph = CadGraph::new(CadAnalysis);
    let root = egraph.add_expr(&cad_to_lang(&input));
    egraph.rebuild();
    let snapshot = Snapshot::of_egraph(&egraph, &[root])
        .unwrap()
        .with_iterations(3);
    let config = SynthConfig::new();
    (
        SynthSnapshot::new(&input, &config, snapshot),
        config.saturation_fingerprint(),
    )
}

/// The same graph with a saturation-phase section attached (what
/// `Synthesizer::run` captures for single-round configs), including a
/// persisted per-rule count table with a name that needs escaping.
fn deterministic_snapshot_with_phase() -> SynthSnapshot {
    let input: Cad = "(Union (Translate 2 0 0 Unit) (Translate 4 0 0 Unit))"
        .parse()
        .unwrap();
    let mut egraph = CadGraph::new(CadAnalysis);
    let root = egraph.add_expr(&cad_to_lang(&input));
    egraph.rebuild();
    let config = SynthConfig::new();
    let phase = Snapshot::of_egraph(&egraph, &[root])
        .unwrap()
        .with_iterations(3);
    let fin = Snapshot::of_egraph(&egraph, &[root])
        .unwrap()
        .with_iterations(3);
    let stat = |name: &str, matches: usize, applied: usize, times_banned: usize| RuleStat {
        name: name.to_owned(),
        matches,
        applied,
        times_banned,
        search_time: std::time::Duration::ZERO,
        apply_time: std::time::Duration::ZERO,
    };
    let stats = vec![
        stat("union-assoc", 7, 3, 0),
        stat("weird name (x)", 1, 0, 2),
    ];
    SynthSnapshot::new(&input, &config, fin)
        .with_sat_phase(SatPhase::new(&config, phase).with_rule_stats(stats))
}

#[test]
fn golden_fixture_pins_synth_snapshot_bytes() {
    let (snapshot, _) = deterministic_snapshot();
    let text = snapshot.to_string();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/synth_row2.snap");
    if std::env::var_os("SZ_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, &text).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture missing ({e}); regenerate with SZ_REGEN_FIXTURES=1"));
    assert_eq!(
        text, expected,
        "snapshot serialization changed: bump sz_egraph::SNAPSHOT_FORMAT_VERSION \
         and regenerate fixtures (SZ_REGEN_FIXTURES=1 cargo test)"
    );
}

#[test]
fn sat_phase_fixture_pins_two_section_bytes() {
    let snapshot = deterministic_snapshot_with_phase();
    let text = snapshot.to_string();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/synth_row2_phase.snap");
    if std::env::var_os("SZ_REGEN_FIXTURES").is_some() {
        std::fs::write(&path, &text).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture missing ({e}); regenerate with SZ_REGEN_FIXTURES=1"));
    assert_eq!(
        text, expected,
        "two-section snapshot serialization changed: bump the `szsynth` header version \
         and regenerate fixtures (SZ_REGEN_FIXTURES=1 cargo test)"
    );
    // Reparse: the sat-phase section round-trips and supports resume
    // exactly when fuel limits are not lower than the producer's.
    let back: SynthSnapshot = text.parse().unwrap();
    assert_eq!(back, snapshot);
    assert!(back.supports_partial_resume(&SynthConfig::new()));
    assert!(!back.supports_partial_resume(&SynthConfig::new().with_iter_limit(1)));
    // The persisted rule-count table round-trips, escaped names and all.
    let stats = back.sat_phase().unwrap().rule_stats();
    assert_eq!(stats.len(), 2);
    assert_eq!(stats[1].name, "weird name (x)");
    assert_eq!(
        (stats[0].matches, stats[0].applied, stats[0].times_banned),
        (7, 3, 0)
    );
}

#[test]
fn header_and_fingerprint_carry_the_format_version() {
    let (snapshot, sat_fp) = deterministic_snapshot();
    let text = snapshot.to_string();
    assert_eq!(text.lines().next(), Some("szsynth v3"));
    assert!(
        text.lines().any(|l| l == "satphase none"),
        "a snapshot without a sat phase says so explicitly"
    );
    assert!(
        text.lines()
            .any(|l| l == format!("szsnap v{SNAPSHOT_FORMAT_VERSION}")),
        "embedded e-graph snapshot must carry the current version"
    );
    // The saturation fingerprint — the snapshot cache key — embeds the
    // format version, so bumping it orphans every stored snapshot
    // instead of letting a stale one poison the cache.
    assert!(
        sat_fp.contains(&format!("snapv{SNAPSHOT_FORMAT_VERSION}")),
        "cache key must embed the snapshot format version: {sat_fp}"
    );
}

#[test]
fn fixture_reparses_byte_stable_and_restores() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/synth_row2.snap");
    let text = std::fs::read_to_string(&path).unwrap();
    let snapshot: SynthSnapshot = text.parse().unwrap();
    assert_eq!(snapshot.to_string(), text);
    assert_eq!(snapshot.iterations(), 3);
    assert_eq!(
        snapshot.input_sexp(),
        "(Union (Translate 2 0 0 Unit) (Translate 4 0 0 Unit))"
    );
    let egraph = snapshot.egraph_snapshot().restore(CadAnalysis);
    assert!(egraph.number_of_classes() > 0);
    assert!(egraph.is_clean());
}
