//! The paper's benchmark methodology for Thingiverse models (§6.1):
//! human-written *parametric* OpenSCAD is flattened to loop-free CSG and
//! fed to the synthesizer. Here several Table-1-style models are written
//! in OpenSCAD, flattened with `sz-scad`, and checked to regain their
//! structure.

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use sz_scad::scad_to_flat_csg;
use szalinski::{synthesize, SynthConfig};

fn config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

#[test]
fn card_org_from_openscad() {
    let src = "
        // 8 divider fins (3171605:card-org).
        for (i = [0 : 7])
          translate([i * 6, 0, 0])
            cube([2, 30, 40], center = true);
    ";
    let flat = scad_to_flat_csg(src).unwrap();
    assert!(flat.is_flat_csg());
    assert_eq!(flat.num_prims(), 8);
    let result = synthesize(&flat, &config());
    let (rank, prog) = result.structured().expect("fin loop");
    assert_eq!(rank, 1);
    // The shared (2, 30, 40) scale may be lifted above the whole fold, in
    // which case the 6 mm spacing appears divided by the 2 mm width.
    let s = prog.cad.to_string();
    assert!(
        s.contains("(* 6 i)") || s.contains("(* 3 i)"),
        "spacing recovered: {s}"
    );
}

#[test]
fn box_tray_from_openscad() {
    let src = "
        // 3x5 compartment tray (3148599:box-tray).
        difference() {
          cube([64, 40, 12], center = true);
          for (i = [0 : 2])
            for (j = [0 : 4])
              translate([j * 12 - 24, i * 12 - 12, 2])
                cube([10, 10, 12], center = true);
        }
    ";
    let flat = scad_to_flat_csg(src).unwrap();
    assert_eq!(flat.num_prims(), 16);
    let result = synthesize(&flat, &config());
    let (_, prog) = result.structured().expect("grid loop");
    assert!(
        prog.cad.to_string().contains("MapIdx2"),
        "nested loop recovered: {}",
        prog.cad
    );
}

#[test]
fn gear_ring_from_openscad() {
    let src = "
        n = 10;
        difference() {
          cylinder(r = 20, h = 4, center = true);
          for (i = [0 : n - 1])
            rotate([0, 0, i * 360 / n])
              translate([18, 0, 0])
                cube([4, 3, 6], center = true);
        }
    ";
    let flat = scad_to_flat_csg(src).unwrap();
    assert_eq!(flat.num_prims(), 11);
    let result = synthesize(&flat, &config());
    let (_, prog) = result.structured().expect("tooth loop");
    let s = prog.cad.to_string();
    assert!(s.contains("(/ (* 360 i) 10)"), "rotation form: {s}");
}

#[test]
fn hex_cells_from_openscad() {
    // The Fig. 18 generator as its source would look on Thingiverse.
    let src = "
        difference() {
          cube([20, 20, 3], center = true);
          for (i = [0 : 1])
            for (j = [0 : 1])
              translate([15 - 10 * i - 10, 5 + 10 * j - 10, 0])
                cylinder(r = 3, h = 4, center = true, $fn = 6);
        }
    ";
    let flat = scad_to_flat_csg(src).unwrap();
    assert_eq!(flat.num_prims(), 5);
    assert!(flat.to_string().contains("Hexagon"));
    let result = synthesize(&flat, &config());
    assert!(result.structured().is_some());
}

#[test]
fn flattener_matches_native_models() {
    // The OpenSCAD route and the native Rust generator produce the same
    // primitive counts and equivalent geometry for the fin model.
    let via_scad = scad_to_flat_csg(
        "for (i = [0 : 7]) translate([i * 6, 0, 0]) cube([2, 30, 40], center = true);",
    )
    .unwrap();
    let native = sz_models::card_org();
    assert_eq!(via_scad.num_prims(), native.num_prims());
    let v = sz_mesh::validate_flat(&via_scad, &native, 4000).unwrap();
    assert!(v.equivalent, "routes must agree geometrically: {v:?}");
}
