//! Table-1 shape tests on a representative subset of the benchmark
//! suite (the full 16-model table runs in the release harness:
//! `cargo run --release -p sz-bench --bin table1`).

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use sz_models::all_models;
use szalinski::{synthesize, CostKind, SynthConfig};

fn config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

fn run(name: &str) -> szalinski::TableRow {
    let model = all_models()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("model {name} exists"));
    synthesize(&model.flat, &config()).table_row(name)
}

#[test]
fn card_org_single_loop() {
    let row = run("3171605:card-org");
    assert_eq!(row.rank, Some(1));
    assert!(
        row.n_l.contains("n1,8") || row.n_l.contains("n2"),
        "{}",
        row.n_l
    );
    assert_eq!(row.f, "d1");
    assert!(
        row.size_reduction() > 0.4,
        "reduction {}",
        row.size_reduction()
    );
}

#[test]
fn box_tray_nested_loop() {
    let row = run("3148599:box-tray");
    assert!(row.rank.is_some());
    assert!(row.n_l.contains("n2"), "expected nested loop: {}", row.n_l);
    assert!(row.size_reduction() > 0.4);
}

#[test]
fn hc_bits_structure() {
    let row = run("2921167:hc-bits");
    assert!(row.rank.is_some());
    assert!(row.n_l.contains("n2,2,2"), "2x2 grid: {}", row.n_l);
}

#[test]
fn relay_box_low_rank_pair_loop() {
    // Paper: the 2-element tab loop exists but ranks low (r = 4).
    let model = all_models()
        .into_iter()
        .find(|m| m.name == "3452260:relay-box")
        .unwrap();
    let result = synthesize(&model.flat, &config());
    match result.structured() {
        Some((rank, prog)) => {
            assert!(rank >= 2, "pair loop should not beat the flat form");
            assert!(prog.cad.to_string().contains("2)"), "{}", prog.cad);
        }
        None => {
            // Acceptable: with k = 5 the pair loop may fall off the list.
        }
    }
}

#[test]
fn sd_rack_and_compose_have_no_structure() {
    // Paper: "ShrinkRay returned the same flat CSG as the input" — the
    // best program is the unchanged input.
    for name in ["64847:sd-rack", "3333935:compose"] {
        let row = run(name);
        assert_ne!(row.rank, Some(1), "{name}'s best program must stay flat");
        assert_eq!(row.o_ns, row.i_ns, "{name} must not shrink");
    }
}

#[test]
fn soldering_keeps_external_and_loops() {
    let model = all_models()
        .into_iter()
        .find(|m| m.name == "1725308:soldering")
        .unwrap();
    let result = synthesize(&model.flat, &config());
    let (_, prog) = result.structured().expect("clip loop");
    let s = prog.cad.to_string();
    assert!(
        s.contains("(External mirror_half)"),
        "External survives: {s}"
    );
    assert!(s.contains("Mapi") || s.contains("MapIdx"), "{s}");
}

#[test]
fn wardrobe_needs_reward_loops() {
    // The @-row behaviour: under AST size the wardrobe's best program
    // stays flat; the reward-loops cost function surfaces loopy variants
    // including the quadratically spaced shelf banks (f = d2).
    let model = all_models()
        .into_iter()
        .find(|m| m.name == "510849:wardrobe")
        .unwrap();
    let plain = synthesize(&model.flat, &config());
    let reward = synthesize(
        &model.flat,
        &config().with_cost(CostKind::RewardLoops).with_k(10),
    );
    assert_ne!(
        plain.structured().map(|(r, _)| r),
        Some(1),
        "AstSize must keep the wardrobe's best program flat"
    );
    let (rank, _) = reward
        .structured()
        .expect("reward-loops exposes loop structure");
    assert_eq!(rank, 1, "reward-loops puts a loopy program first");
    // The quadratic shelf banks appear among the reward-loops programs.
    let has_d2 = reward
        .top_k
        .iter()
        .any(|p| szalinski::fit_tags(&p.cad).iter().any(|t| t == "d2"));
    assert!(has_d2, "quadratic shelf loops expected in the top-k");
}
