//! Geometric oracle over the whole suite: for every Table-1 model,
//! compile the flat input and the best synthesized program to meshes
//! with `sz-mesh` and assert their sampled Hausdorff distance is within
//! a tight tolerance of zero — wiring the mesh oracle (paper §7's "more
//! rigorous approach") into tier-1 `cargo test`.

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use sz_mesh::{compile_mesh, hausdorff_distance, joint_diagonal, MeshQuality};
use szalinski::{synthesize, SynthConfig};

fn config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

/// Modest quality keeps debug-mode meshing tractable; the tolerance
/// below accounts for the coarse marching-tetrahedra grid.
fn quality() -> MeshQuality {
    MeshQuality {
        cylinder_segments: 16,
        sphere_stacks: 8,
        sphere_slices: 16,
        grid_resolution: 20,
    }
}

#[test]
fn suite16_best_program_is_within_hausdorff_eps() {
    for model in sz_models::all_models() {
        let result = synthesize(&model.flat, &config());
        let best = &result.best().cad;
        let output_flat = best
            .eval_to_flat()
            .unwrap_or_else(|e| panic!("{}: best program must evaluate: {e}", model.name));

        let mesh_in = compile_mesh(&model.flat, &quality())
            .unwrap_or_else(|e| panic!("{}: input must mesh: {e}", model.name));
        let mesh_out = compile_mesh(&output_flat, &quality())
            .unwrap_or_else(|e| panic!("{}: output must mesh: {e}", model.name));

        let d = hausdorff_distance(&mesh_in, &mesh_out, 400);
        let diag = joint_diagonal(&mesh_in, &mesh_out);
        // Synthesized parameters may differ from the input's by solver
        // roundoff (well under the pipeline's ε = 1e-3 relative), so the
        // surfaces are near-coincident; 1% of the joint diagonal is far
        // above roundoff yet far below any real geometric divergence.
        let eps = 0.01 * diag.max(1.0);
        assert!(
            d <= eps,
            "{}: Hausdorff distance {d:.6} exceeds eps {eps:.6} (diagonal {diag:.3})",
            model.name
        );
    }
}

#[test]
fn oracle_rejects_genuinely_different_geometry() {
    // Sanity check that the oracle has teeth: two clearly different
    // solids must violate the same tolerance.
    let a: sz_cad::Cad = "(Translate 0 0 0 Unit)".parse().unwrap();
    let b: sz_cad::Cad = "(Translate 9 0 0 Unit)".parse().unwrap();
    let mesh_a = compile_mesh(&a, &quality()).unwrap();
    let mesh_b = compile_mesh(&b, &quality()).unwrap();
    let d = hausdorff_distance(&mesh_a, &mesh_b, 400);
    let eps = 0.01 * joint_diagonal(&mesh_a, &mesh_b).max(1.0);
    assert!(d > eps, "distance {d} should exceed eps {eps}");
}
