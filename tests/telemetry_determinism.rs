//! Telemetry determinism: with a fixed (injected) clock, two identical
//! sequential runs over the 16-model suite emit byte-identical
//! phase-summary text and identical metric values.
//!
//! What this pins down: the *sequence* of spans (which phases run, how
//! many iterations, which rules are searched) and every counter/gauge
//! value are deterministic functions of the jobs and config. Wall-clock
//! durations are not — which is exactly why `Telemetry::deterministic`
//! swaps the monotonic clock for a fixed-step one (each `now()` call
//! advances by a constant), turning span durations into call-sequence
//! counts. Histogram comparisons go through
//! [`Metrics::render_text`](szalinski::Metrics::render_text), which
//! prints observation *counts*, not the (wall-time) values.

use sz_batch::{suite16_jobs, BatchEngine};
use szalinski::{SynthConfig, Telemetry};

/// One fresh sequential suite16 run (no cache, so nothing leaks between
/// runs) under a fixed-step clock; returns the two comparison surfaces.
fn run_once() -> (String, String) {
    let config = SynthConfig::new()
        .with_iter_limit(20)
        .with_node_limit(20_000);
    let telemetry = Telemetry::deterministic(10);
    let engine = BatchEngine::new().with_telemetry(telemetry.clone());
    let report = engine.run_sequential(suite16_jobs(&config));
    assert_eq!(report.ok_count(), report.outcomes.len());
    (telemetry.phase_summary(), telemetry.metrics.render_text())
}

#[test]
fn identical_runs_emit_identical_telemetry() {
    let (phases_a, metrics_a) = run_once();
    let (phases_b, metrics_b) = run_once();
    assert_eq!(
        phases_a, phases_b,
        "phase summaries must match byte-for-byte under a fixed clock"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "counter/gauge values and histogram counts must match"
    );

    // Sanity on the surfaces themselves: the batch, pipeline, and
    // runner layers all contributed.
    for label in [
        "batch/job",
        "pipeline/saturation",
        "pipeline/inference",
        "pipeline/extraction",
        "runner/iteration",
        "runner/search",
        "runner/apply",
        "runner/rebuild",
    ] {
        assert!(phases_a.contains(label), "missing {label} in:\n{phases_a}");
    }
    assert!(
        metrics_a.contains("counter run.mode.cold = 16"),
        "{metrics_a}"
    );
    assert!(metrics_a.contains("counter cache.miss = 16"), "{metrics_a}");
    assert!(
        metrics_a.contains("histogram job.latency_us count = 16"),
        "{metrics_a}"
    );
    assert!(
        metrics_a.contains("gauge pool.queue_depth = 0"),
        "{metrics_a}"
    );
}
