//! The lint gate: the shipped artifacts must carry **zero deny-level
//! findings** — the same invariant CI's `lint-gate` job pins via
//! `szlint`, checked here at the library level so `cargo test` alone
//! catches a regression.
//!
//! Warn/info findings are expected (annihilation rules drop variables,
//! commutativity rules are self-inverse) and deliberately not pinned to
//! exact counts here — the byte-exact renderings live in `sz-lint`'s
//! golden fixtures.

use szalinski_repro::sz_batch::{lint_rules, lint_suite16};
use szalinski_repro::sz_gen::{models, GenSpec};
use szalinski_repro::sz_lint::{lint_cad, lint_ruleset, Severity};
use szalinski_repro::szalinski::{all_rules, rules, structural_rules, SynthConfig, Synthesizer};

#[test]
fn all_rule_sets_have_zero_deny_findings() {
    for (name, set) in [
        ("rules()", rules()),
        ("structural_rules()", structural_rules()),
        ("all_rules()", all_rules()),
    ] {
        let report = lint_ruleset(&set);
        assert!(
            report.is_clean(),
            "{name} has deny findings:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn suite16_inputs_have_zero_deny_findings() {
    let report = lint_suite16();
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn generated_corpora_have_zero_deny_findings() {
    // sz-gen is safe by construction: scales draw from a grid bounded
    // away from zero (SZL202), every coordinate is finite (SZL201),
    // and composition is well-sorted (SZL206). Check the whole deny
    // class anyway, over a spec that exercises every structure kind
    // and the noise path.
    let spec: GenSpec = "count=64,seed=2020,noise=0.01".parse().unwrap();
    for m in models(&spec) {
        let report = lint_cad(&m.name, &m.cad);
        assert!(
            report.is_clean(),
            "{} has deny findings:\n{}",
            m.name,
            report.render_text()
        );
    }
}

#[test]
fn batch_rule_surface_matches_the_library_gate() {
    // `szb lint --rules` and this test must agree on the rule surface:
    // the CLI driver lints all_rules(), deny-free by the test above.
    let report = lint_rules();
    assert!(report.is_clean(), "{}", report.render_text());
    // The audit trail is stable in kind: unused-variable warns on the
    // annihilation rules, inverse-pair/expansivity infos on the rest —
    // and nothing else.
    assert!(report
        .diagnostics
        .iter()
        .all(|d| ["SZL002", "SZL005", "SZL006"].contains(&d.code)));
}

#[test]
fn synthesizer_construction_enforces_the_gate() {
    // The seam the tentpole wires: building a session runs the analyzer,
    // and both built-in configurations pass it.
    for structural in [false, true] {
        let session = Synthesizer::try_new(SynthConfig::new().with_structural_rules(structural))
            .expect("built-in rule sets pass the lint gate");
        let report = session.lint_report();
        assert!(report.is_clean());
        assert_eq!(report.with_severity(Severity::Deny).count(), 0);
    }
}
