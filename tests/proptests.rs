//! Property-based tests over the whole stack: parser/printer round
//! trips, rewrite soundness under the geometric semantics, solver
//! recovery of planted closed forms, and evaluator/validator agreement.

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use proptest::prelude::*;
use sz_cad::{AffineKind, Cad};
use sz_mesh::validate_flat;
use sz_solver::{fit_sequence, FittedFn};

/// A strategy for random *flat* CSG terms of bounded size.
fn arb_flat_cad() -> impl Strategy<Value = Cad> {
    let leaf = prop_oneof![
        Just(Cad::Unit),
        Just(Cad::Sphere),
        Just(Cad::Cylinder),
        Just(Cad::Hexagon),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            // Affine with well-conditioned constants.
            (
                prop_oneof![
                    Just(AffineKind::Translate),
                    Just(AffineKind::Scale),
                    Just(AffineKind::Rotate)
                ],
                -4.0f64..4.0,
                -4.0f64..4.0,
                -4.0f64..4.0,
                inner.clone()
            )
                .prop_map(|(kind, x, y, z, c)| {
                    let v = match kind {
                        // Keep scales away from zero.
                        AffineKind::Scale => [x.abs() + 0.5, y.abs() + 0.5, z.abs() + 0.5],
                        // Axis-aligned rotations (the rewrites' domain).
                        AffineKind::Rotate => [0.0, 0.0, x * 45.0],
                        AffineKind::Translate => [x, y, z],
                    };
                    Cad::Affine(kind, v.into(), Box::new(c))
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cad::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Cad::diff(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cad_print_parse_roundtrip(cad in arb_flat_cad()) {
        let s = cad.to_string();
        let back: Cad = s.parse().unwrap();
        prop_assert_eq!(back, cad);
    }

    #[test]
    fn pretty_print_parse_roundtrip(cad in arb_flat_cad()) {
        let back: Cad = cad.to_pretty(40).parse().unwrap();
        prop_assert_eq!(back, cad);
    }

    #[test]
    fn eval_is_identity_on_flat(cad in arb_flat_cad()) {
        // Flat terms are fixed points of evaluation (modulo Empty
        // simplification, which these never contain).
        let flat = cad.eval_to_flat().unwrap();
        prop_assert_eq!(flat, cad);
    }

    #[test]
    fn top_k_programs_preserve_geometry(cad in arb_flat_cad()) {
        // The central soundness property: anything Szalinski returns is
        // geometrically equal to its input.
        let config = szalinski::SynthConfig::new()
            .with_iter_limit(12)
            .with_node_limit(12_000)
            .with_k(3);
        let result = szalinski::synthesize(&cad, &config);
        for prog in &result.top_k {
            let flat = prog.cad.eval_to_flat().unwrap();
            let v = validate_flat(&flat, &cad, 1500).unwrap();
            prop_assert!(
                v.volume.agreement >= 0.98,
                "agreement {} for {}",
                v.volume.agreement,
                prog.cad
            );
        }
    }

    #[test]
    fn solver_recovers_planted_linear(a in -20.0f64..20.0, b in -20.0f64..20.0, n in 3usize..20) {
        let vals: Vec<f64> = (0..n).map(|i| a * i as f64 + b).collect();
        let f = fit_sequence(&vals, 1e-3).expect("linear data fits");
        for (i, &v) in vals.iter().enumerate() {
            prop_assert!((f.eval(i as f64) - v).abs() <= 2e-3);
        }
    }

    #[test]
    fn solver_recovers_planted_linear_under_noise(
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        seed in 0u64..1000,
        n in 4usize..16,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let vals: Vec<f64> = (0..n)
            .map(|i| a * i as f64 + b + rng.gen_range(-4e-4..4e-4))
            .collect();
        let f = fit_sequence(&vals, 1e-3).expect("noisy linear data fits");
        // The fitted form must match the *clean* model closely.
        for i in 0..n {
            prop_assert!((f.eval(i as f64) - (a * i as f64 + b)).abs() <= 2e-3);
        }
    }

    #[test]
    fn solver_never_fits_large_random_scatter(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Widely scattered integers-plus-junk, 9 samples: none of the
        // three model classes should claim them.
        let vals: Vec<f64> = (0..9).map(|_| rng.gen_range(-50.0..50.0)).collect();
        if let Some(f) = fit_sequence(&vals, 1e-3) {
            // If something fit, it must genuinely reproduce the data.
            for (i, &v) in vals.iter().enumerate() {
                prop_assert!((f.eval(i as f64) - v).abs() <= 1e-2, "spurious {f:?}");
            }
        }
    }

    #[test]
    fn trig_fits_report_high_r2(amp in 1.0f64..10.0, phase in 0.0f64..360.0, n in 6usize..16) {
        let vals: Vec<f64> = (0..n)
            .map(|i| amp * ((30.0 * i as f64 + phase).to_radians()).sin())
            .collect();
        if let Some(FittedFn::Trig(t)) = fit_sequence(&vals, 1e-3) {
            prop_assert!(t.r2 > 0.999);
        }
    }

    #[test]
    fn scad_emission_reflattens(n in 2usize..8, spacing in 1.0f64..5.0) {
        let flat = sz_models::row_of_cubes(n, spacing);
        let scad = sz_scad::cad_to_scad(&flat).unwrap();
        let back = sz_scad::scad_to_flat_csg(&scad).unwrap();
        prop_assert_eq!(back.num_prims(), n);
    }
}
