//! The pluggable cost-model/extraction differential harness: every
//! built-in [`CostModel`] must drive `KBestExtractor` to sorted,
//! deduplicated top-k output; `ParetoExtractor` fronts must be mutually
//! non-dominating and deterministic across runs; and — the ROADMAP's
//! snapshot-reuse invariant — a cost-model-only config change must
//! resume from a stored snapshot with **zero** saturation iterations
//! while matching its own cold run byte-for-byte.

use std::sync::Arc;

use proptest::prelude::*;
use sz_cad::{AffineKind, Cad};
use sz_egraph::{KBestExtractor, ParetoExtractor, Runner};
use szalinski::{
    cad_to_lang, rules, AstSizeCost, CadAnalysis, CostModel, DepthCost, DepthPenalty, GeomCount,
    Lexicographic, ModelCost, OpClass, RewardLoopsCost, RunMode, RunOptions, SynthConfig,
    Synthesis, Synthesizer, WeightedCost, WeightedSum,
};

/// Every built-in ranking model (strictly monotone; `GeomCount` is
/// Pareto-secondary-only and excluded on purpose).
fn builtin_models() -> Vec<Arc<dyn CostModel>> {
    vec![
        Arc::new(AstSizeCost),
        Arc::new(RewardLoopsCost),
        Arc::new(WeightedCost::new().with_weight(OpClass::Geom, 10)),
        Arc::new(DepthCost),
        Arc::new(DepthPenalty::new(Arc::new(AstSizeCost), 2)),
        Arc::new(Lexicographic::new(
            Arc::new(DepthCost),
            Arc::new(AstSizeCost),
        )),
        Arc::new(WeightedSum::new(
            Arc::new(AstSizeCost),
            1,
            Arc::new(DepthCost),
            5,
        )),
    ]
}

fn quick() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(12)
        .with_node_limit(20_000)
}

fn programs(s: &Synthesis) -> Vec<(usize, String)> {
    s.top_k
        .iter()
        .map(|p| (p.cost, p.cad.to_string()))
        .collect()
}

/// A strategy for random *flat* CSG terms of bounded size (mirrors
/// `tests/proptests.rs`).
fn arb_flat_cad() -> impl Strategy<Value = Cad> {
    let leaf = prop_oneof![
        Just(Cad::Unit),
        Just(Cad::Sphere),
        Just(Cad::Cylinder),
        Just(Cad::Hexagon),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(AffineKind::Translate),
                    Just(AffineKind::Scale),
                    Just(AffineKind::Rotate)
                ],
                -4.0f64..4.0,
                -4.0f64..4.0,
                -4.0f64..4.0,
                inner.clone()
            )
                .prop_map(|(kind, x, y, z, c)| {
                    let v = match kind {
                        AffineKind::Scale => [x.abs() + 0.5, y.abs() + 0.5, z.abs() + 0.5],
                        AffineKind::Rotate => [0.0, 0.0, x * 45.0],
                        AffineKind::Translate => [x, y, z],
                    };
                    Cad::Affine(kind, v.into(), Box::new(c))
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cad::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Cad::diff(a, b)),
        ]
    })
}

/// Saturates `input` with the default rule set at proptest-friendly
/// fuel, returning the runner (graph + root).
fn saturate(input: &Cad) -> Runner<szalinski::CadLang, CadAnalysis> {
    Runner::new(CadAnalysis)
        .with_expr(&cad_to_lang(input))
        .with_iter_limit(10)
        .with_node_limit(20_000)
        .run(&rules())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn kbest_under_every_builtin_model_is_sorted(input in arb_flat_cad()) {
        let runner = saturate(&input);
        let root = runner.roots[0];
        for model in builtin_models() {
            let fp = model.fingerprint();
            let kbest = KBestExtractor::new(&runner.egraph, ModelCost(model), 5);
            let results = kbest.find_best_k(root);
            prop_assert!(!results.is_empty(), "{fp}: root must be extractable");
            for w in results.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "{fp}: costs must be non-decreasing");
            }
        }
    }

    #[test]
    fn pipeline_top_k_is_sorted_and_distinct(input in arb_flat_cad()) {
        // Through the full pipeline (where extract_top_k deduplicates),
        // every model yields sorted costs and pairwise-distinct
        // programs.
        for model in builtin_models() {
            let fp = model.fingerprint();
            let session = Synthesizer::new(quick().with_cost_model(model));
            let result = session.run(&input, RunOptions::new()).unwrap();
            for w in result.top_k.windows(2) {
                prop_assert!(w[0].cost <= w[1].cost, "{fp}: sorted");
            }
            for (i, a) in result.top_k.iter().enumerate() {
                for b in &result.top_k[i + 1..] {
                    prop_assert!(a.cad != b.cad, "{fp}: distinct programs");
                }
            }
        }
    }

    #[test]
    fn pareto_front_nondominating_and_deterministic(input in arb_flat_cad()) {
        let runner = saturate(&input);
        let root = runner.roots[0];
        let front = ParetoExtractor::new(
            &runner.egraph,
            ModelCost(Arc::new(AstSizeCost)),
            ModelCost(Arc::new(GeomCount)),
        )
        .find_front(root);
        prop_assert!(!front.is_empty());
        for (i, (a1, b1, _)) in front.iter().enumerate() {
            for (j, (a2, b2, _)) in front.iter().enumerate() {
                if i != j {
                    let dominates = a1 <= a2 && b1 <= b2 && (a1 < a2 || b1 < b2);
                    prop_assert!(!dominates, "front point {i} dominates {j}");
                }
            }
        }
        // Deterministic across runs: a fresh saturation + extraction of
        // the same input reproduces the front exactly.
        let rerun = saturate(&input);
        let front2 = ParetoExtractor::new(
            &rerun.egraph,
            ModelCost(Arc::new(AstSizeCost)),
            ModelCost(Arc::new(GeomCount)),
        )
        .find_front(rerun.roots[0]);
        let points = |f: &Vec<(szalinski::CostVec, szalinski::CostVec, sz_egraph::RecExpr<szalinski::CadLang>)>| -> Vec<String> {
            f.iter().map(|(a, b, e)| format!("{a}|{b}|{e}")).collect()
        };
        prop_assert_eq!(points(&front), points(&front2));
    }

    #[test]
    fn cost_only_model_swap_resumes_with_zero_iterations(input in arb_flat_cad()) {
        // The acceptance invariant: a custom WeightedCost run resumes
        // from an AstSize-produced snapshot without re-saturating,
        // because the cost fingerprint lives in extraction-only fields.
        let session = Synthesizer::new(quick());
        let cold = session
            .run(&input, RunOptions::new().capture_snapshot(true))
            .unwrap();
        let snapshot = cold.snapshot.unwrap();

        let weighted: Arc<dyn CostModel> = Arc::new(
            WeightedCost::new()
                .with_weight(OpClass::Geom, 10)
                .with_weight(OpClass::Affine, 3),
        );
        let weighted_config = quick().with_cost_model(Arc::clone(&weighted));
        prop_assert_eq!(
            weighted_config.saturation_fingerprint(),
            quick().saturation_fingerprint(),
            "cost models must not leak into the saturation fingerprint"
        );
        prop_assert!(weighted_config.fingerprint() != quick().fingerprint());

        let weighted_session = Synthesizer::new(weighted_config);
        let resumed = weighted_session
            .run(&input, RunOptions::new().with_snapshot(snapshot))
            .unwrap();
        prop_assert_eq!(resumed.mode, RunMode::ResumedExtraction);
        prop_assert_eq!(resumed.iterations, 0, "no re-saturation on a cost-only swap");
        let cold_weighted = weighted_session.run(&input, RunOptions::new()).unwrap();
        prop_assert_eq!(programs(&resumed), programs(&cold_weighted));
    }
}

#[test]
fn suite16_weighted_resumes_from_ast_size_snapshots() {
    // The same invariant over real models: snapshot under the default
    // cost, resume under a custom weight table — zero iterations, output
    // equal to the weighted cold run.
    let config = SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000);
    let weighted: Arc<dyn CostModel> = Arc::new(WeightedCost::new().with_weight(OpClass::Geom, 10));
    for model in sz_models::all_models().into_iter().take(4) {
        let session = Synthesizer::new(config.clone());
        let cold = session
            .run(&model.flat, RunOptions::new().capture_snapshot(true))
            .unwrap();
        let snapshot = cold.snapshot.unwrap();

        let weighted_session =
            Synthesizer::new(config.clone().with_cost_model(Arc::clone(&weighted)));
        let resumed = weighted_session
            .run(&model.flat, RunOptions::new().with_snapshot(snapshot))
            .unwrap();
        assert_eq!(resumed.mode, RunMode::ResumedExtraction, "{}", model.name);
        assert_eq!(resumed.iterations, 0, "{}", model.name);
        let cold_weighted = weighted_session
            .run(&model.flat, RunOptions::new())
            .unwrap();
        assert_eq!(
            programs(&resumed),
            programs(&cold_weighted),
            "{}: resumed weighted extraction must equal cold",
            model.name
        );
    }
}

#[test]
fn reward_loops_still_surfaces_the_wardrobe_variant() {
    // The wardrobe@ acceptance row: under the reimplemented
    // RewardLoopsCost the loopy variant must rank first even where
    // plain AST size keeps the flat form.
    let flat = Cad::union_chain(
        (1..=2)
            .map(|i| Cad::translate(2.0 * i as f64, 0.0, 0.0, Cad::Unit))
            .collect(),
    );
    let default = Synthesizer::new(quick())
        .run(&flat, RunOptions::new())
        .unwrap();
    assert_ne!(default.structured().map(|(r, _)| r), Some(1));
    let reward = Synthesizer::new(quick().with_cost_model(Arc::new(RewardLoopsCost)))
        .run(&flat, RunOptions::new())
        .unwrap();
    assert_eq!(reward.structured().map(|(r, _)| r), Some(1));
}
