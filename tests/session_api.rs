//! Integration smoke tests for the session API on real suite16 models:
//! deadlines and cancel tokens stop *promptly* with well-formed results
//! (`StopReason::Cancelled`, extractable partial programs), the
//! deprecated free-function wrappers still agree with the sessions they
//! delegate to, and progress hooks observe every iteration.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use szalinski::{
    CancelToken, ProgressObserver, RunLimits, RunMode, RunOptions, StopReason, SynthConfig,
    Synthesis, Synthesizer,
};

fn programs(s: &Synthesis) -> Vec<(usize, String)> {
    s.top_k
        .iter()
        .map(|p| (p.cost, p.cad.to_string()))
        .collect()
}

#[test]
fn one_millisecond_deadline_cancels_a_suite16_model_promptly() {
    // The cancellation smoke the CI job mirrors: a 1 ms deadline on a
    // real model must return Cancelled quickly instead of hanging for
    // the full 150-iteration / 60 s default budget.
    let model = sz_models::all_models()
        .into_iter()
        .find(|m| m.name.contains("gear"))
        .expect("suite16 contains the gear");
    let session = Synthesizer::new(SynthConfig::new());
    let start = Instant::now();
    let result = session
        .run(
            &model.flat,
            RunOptions::new().with_deadline(Duration::from_millis(1)),
        )
        .expect("cancellation is not an error");
    let elapsed = start.elapsed();
    assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
    assert!(
        !result.top_k.is_empty(),
        "a cancelled run still extracts (at worst the input itself)"
    );
    assert!(result.cancelled());
    // "Promptly": one iteration boundary + extraction. The gear's cold
    // run takes multiple seconds of saturation; leave slack for CI.
    assert!(
        elapsed < Duration::from_secs(30),
        "1 ms deadline took {elapsed:?} — cancellation is not prompt"
    );
}

#[test]
fn cancel_token_fired_mid_run_stops_at_a_boundary() {
    struct CancelAfter {
        token: CancelToken,
        after: usize,
        seen: AtomicUsize,
    }
    impl ProgressObserver for CancelAfter {
        fn on_iteration(&self, _i: usize, _stats: &sz_egraph::Iteration) {
            if self.seen.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
                self.token.cancel();
            }
        }
    }
    let token = CancelToken::new();
    let observer = Arc::new(CancelAfter {
        token: token.clone(),
        after: 2,
        seen: AtomicUsize::new(0),
    });
    let model = sz_models::all_models().remove(0);
    let session = Synthesizer::new(SynthConfig::new());
    let result = session
        .run(
            &model.flat,
            RunOptions::new()
                .with_cancel_token(token)
                .with_progress(observer.clone()),
        )
        .unwrap();
    assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
    assert_eq!(result.iterations, observer.seen.load(Ordering::Relaxed));
    assert_eq!(result.iterations, 2, "cancelled at the requested boundary");
    assert!(!result.top_k.is_empty());
}

#[test]
fn deprecated_wrappers_agree_with_the_session_api() {
    #![allow(deprecated)]
    let flat = sz_cad::Cad::union_chain(
        (1..=5)
            .map(|i| sz_cad::Cad::translate(2.0 * i as f64, 0.0, 0.0, sz_cad::Cad::Unit))
            .collect(),
    );
    let config = SynthConfig::new()
        .with_iter_limit(30)
        .with_node_limit(30_000);
    let session = Synthesizer::new(config.clone());

    let via_session = session.run(&flat, RunOptions::new()).unwrap();
    let via_synthesize = szalinski::synthesize(&flat, &config);
    let via_try = szalinski::try_synthesize(&flat, &config).unwrap();
    assert_eq!(programs(&via_session), programs(&via_synthesize));
    assert_eq!(programs(&via_session), programs(&via_try));

    let (with_snap, snapshot) = szalinski::synthesize_with_snapshot(&flat, &config);
    assert_eq!(programs(&via_session), programs(&with_snap));
    let resumed = szalinski::resume_synthesize(&flat, &config, &snapshot).unwrap();
    assert_eq!(programs(&via_session), programs(&resumed));
    assert_eq!(resumed.mode, RunMode::ResumedExtraction);
    assert_eq!(resumed.iterations, 0);
}

#[test]
fn run_limits_override_the_session_fuel() {
    let model = sz_models::all_models().remove(0);
    let session = Synthesizer::new(SynthConfig::new());
    let tight = session
        .run(
            &model.flat,
            RunOptions::new().with_limits(RunLimits::new().with_iter_limit(2)),
        )
        .unwrap();
    assert!(tight.iterations <= 2);
    // The override is equivalent to a session configured that way.
    let cold = Synthesizer::new(SynthConfig::new().with_iter_limit(2))
        .run(&model.flat, RunOptions::new())
        .unwrap();
    assert_eq!(programs(&tight), programs(&cold));
}
