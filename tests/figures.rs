//! Integration tests regenerating the paper's worked figures
//! (small-scale versions run in debug; the full-size reruns live in the
//! bench harness).

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use sz_cad::Cad;
use sz_models::{
    dice_six_face, grid_2x2, hexcell_plate, nested_affine_cubes, noisy_hexagons, row_of_cubes,
};
use szalinski::{synthesize, CostKind, SynthConfig};

fn config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

#[test]
fn fig2_five_cubes_to_mapi() {
    let flat = row_of_cubes(5, 2.0);
    let result = synthesize(&flat, &config());
    let (rank, prog) = result.structured().expect("structure");
    assert_eq!(rank, 1);
    let s = prog.cad.to_string();
    assert!(
        s.contains("(Mapi (Fun (Translate (* 2 (+ i 1)) 0 0 c)) (Repeat Unit 5))"),
        "got {s}"
    );
    // Equivalence to the input trace.
    assert_eq!(prog.cad.eval_to_flat().unwrap(), flat);
}

#[test]
fn fig9_two_cubes_steps() {
    // The worked 2-cube example: fold rule, determinize, function
    // inference. With only two elements the loop does not win AST size,
    // but it must exist in the e-graph (we surface it via reward-loops).
    let flat = row_of_cubes(2, 2.0);
    let result = synthesize(&flat, &config().with_cost(CostKind::RewardLoops));
    let (_, prog) = result.structured().expect("structure exists");
    assert!(prog.cad.to_string().contains("(Repeat Unit 2)"));
}

#[test]
fn fig10_nested_affine_to_nested_mapi() {
    let flat = nested_affine_cubes(5);
    let result = synthesize(&flat, &config());
    let (_, prog) = result.structured().expect("structure");
    let s = prog.cad.to_string();
    assert_eq!(s.matches("Mapi").count(), 3, "three affine layers: {s}");
    assert!(s.contains("(Repeat Unit 5)"), "got {s}");
    // Unrolling reproduces the trace (up to float wobble, here exact).
    assert_eq!(prog.cad.eval_to_flat().unwrap(), flat);
}

#[test]
fn fig14_grid_to_doubly_nested_loop() {
    let result = synthesize(&grid_2x2(), &config());
    let (_, prog) = result.structured().expect("structure");
    let s = prog.cad.to_string();
    assert!(s.contains("MapIdx2"), "got {s}");
    // The unrolled grid covers the same four positions (order may vary
    // under the commutative fold, so compare as sets of primitives).
    let flat = prog.cad.eval_to_flat().unwrap();
    for want in ["12 12 0", "-12 12 0", "-12 -12 0", "12 -12 0"] {
        assert!(
            flat.to_string()
                .contains(&format!("(Translate {want} Unit)")),
            "missing {want} in {flat}"
        );
    }
}

#[test]
fn fig16_noisy_input_recovers_clean_loop() {
    let flat = noisy_hexagons();
    let result = synthesize(&flat, &config().with_cost(CostKind::RewardLoops));
    let (_, prog) = result.structured().expect("noise-tolerant structure");
    let s = prog.cad.to_string();
    // The noisy 1.4999996667 / 1.499999466 got snapped to 1.5 inside the
    // inferred loop.
    assert!(s.contains("1.5"), "noise not cleaned: {s}");
    assert!(
        s.contains("(Repeat Hexagon 2)"),
        "loop over 2 hexagons: {s}"
    );
}

#[test]
fn fig17_dice_six_face_nested_loop() {
    let result = synthesize(&dice_six_face(), &config());
    let (_, prog) = result.structured().expect("structure");
    let s = prog.cad.to_string();
    assert!(s.contains("MapIdx2"), "got {s}");
    assert!(s.contains("2 3") || s.contains("3 2"), "2x3 grid: {s}");
}

#[test]
fn fig18_19_hexcell_diversity() {
    let result = synthesize(&hexcell_plate(), &config().with_k(24));
    let loops = result
        .top_k
        .iter()
        .filter(|p| p.cad.to_string().contains("MapIdx2"))
        .count();
    let trigs = result
        .top_k
        .iter()
        .filter(|p| p.cad.to_string().contains("Sin"))
        .count();
    assert!(loops > 0, "nested-loop variant missing from top-k");
    assert!(trigs > 0, "trigonometric variant missing from top-k");
    // The loop variant ranks first (it is the smallest).
    let (rank, _) = result.structured().unwrap();
    assert_eq!(rank, 1);
}

#[test]
fn fig18_loop_edit_adds_column() {
    // The editability claim: bumping a loop bound adds a column of cells.
    let result = synthesize(&hexcell_plate(), &config().with_k(24));
    let loopy = result
        .top_k
        .iter()
        .find(|p| p.cad.to_string().contains("MapIdx2"))
        .expect("loop variant");
    let before = loopy.cad.eval_to_flat().unwrap().num_prims();
    let edited: Cad = loopy
        .cad
        .to_string()
        .replacen("(MapIdx2 2 2", "(MapIdx2 2 3", 1)
        .parse()
        .unwrap();
    let after = edited.eval_to_flat().unwrap().num_prims();
    assert_eq!(after, before + 2, "one extra column = two extra cells");
}
