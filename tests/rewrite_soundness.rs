//! Geometric soundness of every rewrite family: for fixed inputs
//! exercising each rule, all equal-cost-or-otherwise programs that
//! saturation places in the root e-class must denote the same solid.
//! (This is the translation-validation view of Fig. 8's "semantics
//! preserving" claim; `tests/proptests.rs` adds randomized inputs.)

use sz_cad::Cad;
use sz_egraph::{Runner, StopReason};
use sz_mesh::validate_flat;
use szalinski::{all_rules, cad_to_lang, lang_to_cad, CadAnalysis, CadCost, CostKind};

/// Saturates `input` with the full rule set, extracts up to 8 programs,
/// and validates them all against the input geometry.
fn check_all_variants(input: &str) {
    let cad: Cad = input.parse().unwrap();
    let runner = Runner::new(CadAnalysis)
        .with_expr(&cad_to_lang(&cad))
        .with_iter_limit(25)
        .with_node_limit(30_000)
        .run(&all_rules());
    assert!(
        !matches!(runner.stop_reason, Some(StopReason::TimeLimit(_))),
        "saturation should finish for {input}"
    );
    let kbest = sz_egraph::KBestExtractor::new(&runner.egraph, CadCost::new(CostKind::AstSize), 8);
    let results = kbest.find_best_k(runner.roots[0]);
    assert!(!results.is_empty());
    for (cost, expr) in results {
        let variant = lang_to_cad(&expr).expect("well-sorted term");
        let flat = variant.eval_to_flat().expect("evaluates");
        let v = validate_flat(&flat, &cad, 3000).unwrap();
        assert!(
            v.volume.agreement >= 0.99,
            "unsound variant (cost {cost}) for {input}: {variant} \
             (agreement {})",
            v.volume.agreement
        );
    }
}

#[test]
fn lifting_family_is_sound() {
    check_all_variants("(Union (Translate 1 2 3 Unit) (Translate 1 2 3 Sphere))");
    check_all_variants("(Diff (Rotate 0 0 45 (Scale 3 3 1 Unit)) (Rotate 0 0 45 Sphere))");
    check_all_variants("(Inter (Scale 2 2 2 Unit) (Scale 2 2 2 (Translate 1 0 0 Unit)))");
}

#[test]
fn reordering_family_is_sound() {
    check_all_variants("(Scale 2 3 4 (Translate 1 1 1 Unit))");
    check_all_variants("(Translate 2 3 4 (Scale 2 4 8 Unit))");
    check_all_variants("(Rotate 0 0 30 (Translate 3 0 0 Unit))");
    check_all_variants("(Translate 0 2 0 (Rotate 90 0 0 Unit))");
    check_all_variants("(Rotate 0 45 0 (Translate 0 0 2 Sphere))");
    check_all_variants("(Scale 2 2 2 (Rotate 10 20 30 Unit))");
}

#[test]
fn collapsing_family_is_sound() {
    check_all_variants("(Translate 1 2 3 (Translate 4 5 6 Unit))");
    check_all_variants("(Scale 2 1 1 (Scale 1 3 1 Sphere))");
    check_all_variants("(Rotate 0 0 30 (Rotate 0 0 60 (Scale 3 1 1 Unit)))");
    check_all_variants("(Translate 0 0 0 (Scale 1 1 1 (Rotate 0 0 0 Hexagon)))");
}

#[test]
fn fold_family_is_sound() {
    check_all_variants(
        "(Union (Translate 2 0 0 Unit) (Union (Translate 4 0 0 Unit) (Translate 6 0 0 Unit)))",
    );
    check_all_variants("(Inter (Scale 3 3 3 Unit) (Inter (Scale 3 3 3 Sphere) Cylinder))");
}

#[test]
fn boolean_family_is_sound() {
    check_all_variants("(Union Unit Unit)");
    check_all_variants("(Diff Unit Empty)");
    check_all_variants("(Diff (Diff (Scale 4 4 4 Unit) Sphere) (Translate 1 0 0 Unit))");
    check_all_variants("(Union Empty (Inter (Scale 2 2 2 Unit) Sphere))");
}

#[test]
fn mixed_deep_nesting_is_sound() {
    check_all_variants(
        "(Diff (Scale 6 6 2 (Rotate 0 0 15 Unit)) \
          (Union (Rotate 0 0 15 (Translate 1 1 0 (Scale 0.5 0.5 3 Cylinder))) \
                 (Rotate 0 0 15 (Translate -1 -1 0 (Scale 0.5 0.5 3 Cylinder)))))",
    );
}
