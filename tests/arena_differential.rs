//! Arena-storage differential: pins the flat, id-indexed e-graph core
//! (node arena + dense memo + slot-indexed classes) to the observable
//! behavior the rest of the stack depends on, over proptest-generated
//! CAD workloads (the same generator shape as `tests/ematch_differential.rs`).
//!
//! Three contracts, each of which the arena refactor could silently
//! break while all unit tests still pass:
//!
//! 1. **Hash-cons coverage** — after `rebuild`, looking up the
//!    canonicalized form of any node stored in any class must return
//!    exactly that class; class node lists are value-sorted, deduped,
//!    and live in canonical slots.
//! 2. **Determinism** — the same workload replayed from scratch yields
//!    a byte-identical `szsnap` serialization (arena interning order,
//!    class iteration order, and rebuild scheduling are all
//!    deterministic).
//! 3. **Id stability** — snapshot → restore → snapshot is
//!    byte-identical with **zero format-version bump**: `NodeId`s are
//!    per-instance derived state and never leak into the text format.
//!
//! CI runs this suite in the `egraph-core` job alongside the
//! naive-ematch differentials and the bench regression gate.

use proptest::prelude::*;
use sz_cad::{AffineKind, Cad};
use sz_egraph::{
    AstSize, Extractor, KBestExtractor, Language, Runner, Snapshot, SNAPSHOT_FORMAT_VERSION,
};
use szalinski::{all_rules, cad_to_lang, CadAnalysis, CadGraph, CadLang};

/// A strategy for random flat CSG terms of bounded size — the same
/// shape `tests/ematch_differential.rs` uses.
fn arb_flat_cad() -> impl Strategy<Value = Cad> {
    let leaf = prop_oneof![
        Just(Cad::Unit),
        Just(Cad::Sphere),
        Just(Cad::Cylinder),
        Just(Cad::Hexagon),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(AffineKind::Translate),
                    Just(AffineKind::Scale),
                    Just(AffineKind::Rotate)
                ],
                -4.0f64..4.0,
                -4.0f64..4.0,
                -4.0f64..4.0,
                inner.clone()
            )
                .prop_map(|(kind, x, y, z, c)| {
                    let v = match kind {
                        AffineKind::Scale => [x.abs() + 0.5, y.abs() + 0.5, z.abs() + 0.5],
                        AffineKind::Rotate => [0.0, 0.0, x * 45.0],
                        AffineKind::Translate => [x, y, z],
                    };
                    Cad::Affine(kind, v.into(), Box::new(c))
                }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cad::union(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Cad::diff(a, b)),
        ]
    })
}

/// Saturates `cad` for `iters` iterations and returns runner state.
fn saturated(cad: &Cad, iters: usize) -> Runner<CadLang, CadAnalysis> {
    Runner::new(CadAnalysis)
        .with_expr(&cad_to_lang(cad))
        .with_iter_limit(iters)
        .with_node_limit(10_000)
        .run(&all_rules())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hashcons_coverage_after_rebuild(
        cad in arb_flat_cad(),
        iters in 0usize..4,
    ) {
        let eg: CadGraph = saturated(&cad, iters).egraph;
        let mut total = 0usize;
        let mut last_id = None;
        for class in eg.classes() {
            // Classes iterate in ascending canonical-slot order.
            prop_assert_eq!(eg.find(class.id), class.id, "class id not canonical");
            if let Some(prev) = last_id {
                prop_assert!(prev < class.id, "classes() out of order");
            }
            last_id = Some(class.id);
            let nodes: Vec<CadLang> = eg.nodes_of(class).cloned().collect();
            total += nodes.len();
            for w in nodes.windows(2) {
                prop_assert!(w[0] < w[1], "class nodes not sorted/deduped");
            }
            for node in nodes {
                // The canonicalized form of every stored node must
                // hash-cons back to exactly this class.
                let mut canon = node.clone();
                canon.update_children(|c| eg.find(c));
                prop_assert_eq!(
                    eg.lookup(canon).map(|id| eg.find(id)),
                    Some(class.id),
                    "memo lost a node of class {}", class.id
                );
            }
        }
        prop_assert_eq!(total, eg.total_number_of_nodes());
        // The arena interns each distinct node once; every class node is
        // a distinct canonical form, so the arena is at least that big.
        prop_assert!(eg.arena_size() >= total);
        prop_assert_eq!(eg.memo_size(), eg.arena_size());
    }

    #[test]
    fn replayed_workload_snapshots_byte_identical(
        cad in arb_flat_cad(),
        iters in 0usize..3,
    ) {
        let a = saturated(&cad, iters);
        let b = saturated(&cad, iters);
        let snap_a = Snapshot::of_egraph(&a.egraph, &a.roots).unwrap().to_string();
        let snap_b = Snapshot::of_egraph(&b.egraph, &b.roots).unwrap().to_string();
        prop_assert_eq!(snap_a, snap_b, "arena storage is not deterministic");
    }

    #[test]
    fn restore_roundtrip_is_byte_identical_with_no_version_bump(
        cad in arb_flat_cad(),
        iters in 0usize..3,
    ) {
        let runner = saturated(&cad, iters);
        let snapshot = Snapshot::of_egraph(&runner.egraph, &runner.roots).unwrap();
        let text = snapshot.to_string();
        prop_assert!(
            text.starts_with("szsnap v1\n"),
            "arena refactor must not bump the snapshot format (v{})",
            SNAPSHOT_FORMAT_VERSION
        );
        // Restoring re-interns every node into a fresh arena; the stable
        // ids it serializes back out must be unchanged.
        let restored: CadGraph = snapshot.restore(CadAnalysis);
        let roots: Vec<_> = runner.roots.iter().map(|&r| restored.find(r)).collect();
        let again = Snapshot::of_egraph(&restored, &roots).unwrap().to_string();
        prop_assert_eq!(again, text, "snapshot roundtrip drifted");
    }

    #[test]
    fn dense_extraction_tables_agree(
        cad in arb_flat_cad(),
        iters in 0usize..3,
    ) {
        // The 1-best dirty-worklist table and the k-best staged table
        // are independent implementations over the same arena; their
        // optima must coincide on every root-reachable class.
        let runner = saturated(&cad, iters);
        let eg = &runner.egraph;
        let ex = Extractor::new(eg, AstSize);
        let kb = KBestExtractor::new(eg, AstSize, 3);
        let root = eg.find(runner.roots[0]);
        let best = ex.best_cost(root);
        let k = kb.find_best_k(root);
        prop_assert_eq!(best, k.first().map(|(c, _)| *c));
        for w in k.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "k-best front not sorted");
        }
    }
}
