//! End-to-end pipeline tests with geometric (translation) validation:
//! every synthesized program must denote the same solid as its input.

// The deprecated free-function pipeline API stays under test on
// purpose: the wrappers must keep matching the `Synthesizer` session
// API they delegate to (see `tests/session_api.rs`).
#![allow(deprecated)]

use sz_mesh::validate_program;
use sz_models::{gear, row_of_cubes};
use szalinski::{synthesize, SynthConfig};

fn config() -> SynthConfig {
    SynthConfig::new()
        .with_iter_limit(60)
        .with_node_limit(80_000)
}

#[test]
fn small_gear_end_to_end() {
    // A 12-tooth gear keeps debug-mode runtime low; the 60-tooth run is
    // in the release bench harness.
    let flat = gear(12);
    let result = synthesize(&flat, &config());
    let (rank, prog) = result.structured().expect("gear has structure");
    assert!(rank <= 5, "structured program must be in the top-5");
    let s = prog.cad.to_string();
    assert!(s.contains("(/ (* 360 (+ i 1)) 12)"), "rotation form: {s}");
    assert!(prog.cad.num_nodes() < flat.num_nodes() / 2);
    let v = validate_program(&prog.cad, &flat, 6000).unwrap();
    assert!(v.equivalent, "geometry must be preserved: {v:?}");
}

#[test]
fn every_top_k_program_is_equivalent_to_input() {
    // Soundness across the whole top-k, not just the winner.
    let flat = row_of_cubes(6, 3.0);
    let result = synthesize(&flat, &config());
    assert!(!result.top_k.is_empty());
    for prog in &result.top_k {
        let v = validate_program(&prog.cad, &flat, 4000).unwrap();
        assert!(
            v.equivalent,
            "unsound program (cost {}): {}",
            prog.cost, prog.cad
        );
    }
}

#[test]
fn synthesis_is_deterministic() {
    let flat = row_of_cubes(4, 2.0);
    let a = synthesize(&flat, &config());
    let b = synthesize(&flat, &config());
    let strings = |r: &szalinski::Synthesis| -> Vec<String> {
        r.top_k.iter().map(|p| p.cad.to_string()).collect()
    };
    assert_eq!(strings(&a), strings(&b));
}

#[test]
fn noise_within_epsilon_preserves_structure() {
    // §6.4: ε-bounded noise must not change the discovered structure.
    let clean = row_of_cubes(6, 2.0);
    let noisy = sz_models::add_noise(&clean, 4e-4, 17);
    let clean_result = synthesize(&clean, &config());
    let noisy_result = synthesize(&noisy, &config());
    let (_, clean_prog) = clean_result.structured().expect("clean structure");
    let (_, noisy_prog) = noisy_result.structured().expect("noisy structure");
    // The recovered programs are *identical*: snapping removed the noise.
    assert_eq!(clean_prog.cad, noisy_prog.cad);
}

#[test]
fn scad_to_synthesis_to_scad() {
    // The full §6.1 loop: parametric OpenSCAD -> flat -> synthesized ->
    // OpenSCAD, preserving primitive counts.
    let src = "for (i = [1 : 6]) translate([i * 4, 0, 0]) cube(2, center = true);";
    let flat = sz_scad::scad_to_flat_csg(src).unwrap();
    assert_eq!(flat.num_prims(), 6);
    let result = synthesize(&flat, &config());
    let (_, prog) = result.structured().expect("structure");
    let emitted = sz_scad::cad_to_scad(&prog.cad).unwrap();
    assert!(emitted.contains("for ("), "loop survives: {emitted}");
    let reflat = sz_scad::scad_to_flat_csg(&emitted).unwrap();
    assert_eq!(reflat.num_prims(), 6);
}

#[test]
fn stl_pipeline_from_synthesized_program() {
    // Program -> flat -> mesh -> STL -> mesh again.
    let flat = row_of_cubes(3, 2.0);
    let result = synthesize(&flat, &config());
    let prog = &result.best().cad;
    let mesh = sz_mesh::compile_mesh(
        &prog.eval_to_flat().unwrap(),
        &sz_mesh::MeshQuality::default(),
    )
    .unwrap();
    let stl = sz_mesh::to_ascii_stl(&mesh, "row");
    let back = sz_mesh::read_ascii_stl(stl.as_bytes()).unwrap();
    assert_eq!(back.triangles.len(), mesh.triangles.len());
    assert!((back.signed_volume() - 3.0).abs() < 1e-6);
}
