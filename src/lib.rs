//! # szalinski-repro: facade crate
//!
//! One-stop access to the whole Szalinski/ShrinkRay reproduction:
//!
//! * [`szalinski`] — the synthesizer (equality saturation + inverse
//!   transformations);
//! * [`sz_cad`] — the CSG/LambdaCAD languages and evaluator;
//! * [`sz_egraph`] — the e-graph engine;
//! * [`sz_solver`] — the arithmetic function solvers;
//! * [`sz_mesh`] — meshes, STL, implicit geometry, translation validation;
//! * [`sz_scad`] — OpenSCAD import/export;
//! * [`sz_models`] — the 16-model benchmark suite and figure inputs.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench` for the table/figure harnesses.

pub use sz_cad;
pub use sz_egraph;
pub use sz_mesh;
pub use sz_models;
pub use sz_scad;
pub use sz_solver;
pub use szalinski;
