//! # szalinski-repro: facade crate
//!
//! One-stop access to the whole Szalinski/ShrinkRay reproduction:
//!
//! * [`szalinski`] — the synthesizer (equality saturation + inverse
//!   transformations);
//! * [`sz_cad`] — the CSG/LambdaCAD languages and evaluator;
//! * [`sz_egraph`] — the e-graph engine;
//! * [`sz_solver`] — the arithmetic function solvers;
//! * [`sz_mesh`] — meshes, STL, implicit geometry, translation validation;
//! * [`sz_scad`] — OpenSCAD import/export;
//! * [`sz_models`] — the 16-model benchmark suite and figure inputs;
//! * [`sz_gen`] — the deterministic synthetic corpus generator: seeded,
//!   distribution-controlled flat-CSG corpora at 10⁴–10⁶ scale (and the
//!   `szgen` CLI);
//! * [`sz_lint`] — static analysis: rewrite-rule hygiene, compiled
//!   e-match program verification, CAD input linting (and the `szlint`
//!   CLI);
//! * [`sz_batch`] — corpus-scale parallel batch synthesis with result
//!   caching (and the `szb` CLI);
//! * [`sz_trace`] — zero-dependency telemetry: hierarchical spans,
//!   a counters/gauges/histograms registry, Chrome-trace export.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench` for the table/figure harnesses.
//!
//! # Architecture
//!
//! The workspace is layered; every arrow is a Cargo dependency and
//! points strictly downward (no cycles):
//!
//! ```text
//!                    ┌─────────────────────────────┐
//!                    │  sz-bench  (tables/figures) │
//!                    └──────┬──────────────┬───────┘
//!                           │              │
//!          ┌────────────────▼───┐          │
//!          │ sz-batch (szb CLI) │          │
//!          │ pool · cache · rpt │          │
//!          └─┬─────┬──────┬─────┘          │
//!            │     │      │                │
//!   ┌────────▼┐ ┌──▼────┐ │  ┌─────────┐  │
//!   │ sz-scad │ │ sz-   │ └──► szalinski◄──┘   ┌─────────┐
//!   │ (SCAD   │ │ models│    │ (pipeline)│────► sz-solver│
//!   │  I/O)   │ └──┬────┘    └──┬────┬───┘     └────┬────┘
//!   └────┬────┘    │            │    │               │
//!        │         │   ┌───────▼─┐  │               │
//!        │         │   │sz-egraph│  │               │
//!        │         │   └─────────┘  │               │
//!        └─────────┴────────────────▼───────────────┘
//!                               sz-cad
//!                    (sz-mesh also sits on sz-cad;
//!              sz-trace underlies sz-egraph/szalinski/sz-batch;
//!        sz-lint sits on sz-egraph + sz-cad and is consumed by
//!        szalinski — rule-set analysis at compile time — and by
//!                  sz-batch — `szb lint` / `szlint`)
//! ```
//!
//! The generated-corpus layer slots in between the corpus engines and
//! the mid-layer crates (arrows still point strictly downward):
//!
//! ```text
//!   sz-bench (`corpus` soak bin) ──┐
//!   sz-batch (`szb --gen <spec>`) ─┴─► sz-gen (szgen CLI)
//!                                        │  spec → (seed, index)-keyed
//!                                        │  RNG → flat CSG + manifest
//!                                        ├──► sz-models (primitives, noise)
//!                                        ├──► sz-scad   (.scad emission)
//!                                        ├──► sz-trace  (gen spans/metrics)
//!                                        └──► sz-cad    (terms, metrics)
//! ```
//!
//! * **`sz-cad`** is the foundation: the `Cad` AST shared by every
//!   layer, its s-expression interchange format, evaluator, and
//!   metrics.
//! * **`sz-egraph`**, **`sz-solver`**, **`sz-mesh`**, **`sz-scad`**,
//!   and **`sz-models`** are independent mid-layer crates (engine,
//!   arithmetic fitting, geometry validation, OpenSCAD I/O, benchmark
//!   corpus). Inside `sz-egraph`, e-matching is **compiled**: every
//!   [`sz_egraph::Rewrite`] turns its left-hand pattern into a linear
//!   Bind/Compare/Lookup program ([`sz_egraph::machine`]) executed by a
//!   small backtracking VM, and draws its root candidates from an
//!   operator index maintained on the e-graph
//!   ([`sz_egraph::EGraph::classes_with_op`]) so a rule only visits
//!   classes containing its root operator. The naive AST-walking
//!   matcher survives as [`sz_egraph::Pattern::search`] — the oracle of
//!   the VM-vs-naive differential suites (`tests/ematch_differential.rs`
//!   and the engine-level proptests), and what every rewrite falls back
//!   to under the `sz-egraph/naive-ematch` feature. The op index is
//!   derived state: snapshots never store it (format unchanged, no
//!   version bump) and [`sz_egraph::Snapshot::restore`] rebuilds it.
//! * **`szalinski`** (core) composes them into the paper's pipeline:
//!   saturate → determinize → list-manipulate → infer → extract. The
//!   entry point is the **session API**: build a
//!   [`szalinski::Synthesizer`] once from a [`szalinski::SynthConfig`]
//!   (the rewrite rule set is compiled once and cached process-wide),
//!   then call `run(&Cad, RunOptions) -> Result<Synthesis, SynthError>`
//!   for every request. One `run` covers all three execution modes,
//!   dispatched automatically from the offered
//!   [`szalinski::SynthSnapshot`] (recorded in `Synthesis::mode`):
//!
//!   ```text
//!                          ┌─ no / incompatible snapshot ──► cold run
//!   Synthesizer::run ──────┼─ exact saturation fingerprint ► restore final
//!     (one entry point)    │   match                          graph, re-run
//!                          │                                  extraction only
//!                          └─ fingerprint match modulo      ► restore the
//!                              LOWER fuel limits               saturation-phase
//!                              ("partial resume")              runner state and
//!                                                              CONTINUE saturating
//!   ```
//!
//!   Runs are bounded and observable: [`szalinski::RunLimits`] overrides
//!   iteration/node fuel per run and sets a wall-clock **deadline**;
//!   a cooperative [`szalinski::CancelToken`] and the deadline are
//!   polled at saturation **iteration boundaries**, stopping with
//!   [`sz_egraph::StopReason::Cancelled`] while the e-graph is clean —
//!   the partial `Synthesis` is still extracted, so serving callers
//!   always get a well-formed answer. A
//!   [`szalinski::ProgressObserver`] hook sees every iteration. The old
//!   free functions (`synthesize`, `try_synthesize`,
//!   `*_with_snapshot`, `resume_synthesize`) survive as deprecated
//!   thin wrappers over a one-shot session. Saturated e-graphs persist
//!   as versioned text (`szsynth v3` wrapping
//!   [`sz_egraph::Snapshot`]s): the final graph for extraction-only
//!   resumes plus a saturation-phase section (with the per-rule
//!   lifetime [`sz_egraph::RuleStat`] counts since v3) that makes
//!   lower-fuel snapshots *continuable* — proven byte-identical to
//!   cold runs by `tests/partial_resume_differential.rs`.
//!
//!   **Extraction is pluggable**: cost schemes implement the
//!   object-safe [`szalinski::CostModel`] trait (a per-node cost over
//!   `CadLang` folded through lexicographic [`szalinski::CostVec`]s,
//!   plus a stable `fingerprint()` that keys caches), set per config
//!   via `SynthConfig::with_cost_model` (the legacy `CostKind` enum is
//!   a thin wrapper):
//!
//!   ```text
//!   CostModel ── built-ins:   AstSizeCost (default) · RewardLoopsCost (wardrobe@)
//!       │                     WeightedCost (per-OpClass table) · DepthCost ·
//!       │                     GeomCount (pareto-secondary)
//!       ├────── combinators:  DepthPenalty · Lexicographic · WeightedSum
//!       └────── extractors:   KBestExtractor      → Synthesis::top_k (ranked)
//!                             ParetoExtractor     → Synthesis::pareto (two-objective
//!                                                   deterministic front)
//!   fingerprint() lives in the EXTRACTION-ONLY half of the config
//!   fingerprint, so any cost-model swap reuses stored snapshots with
//!   zero saturation iterations (tests/cost_models.rs).
//!   ```
//!
//!   The `szb --cost <SPEC>` mini-grammar (`ast-size`,
//!   `weights(loop=1,geom=10)`, `pareto(size,depth)`, …) parses into
//!   these models via [`szalinski::parse_cost_spec`].
//! * **`sz-lint`** is the static-analysis layer over the same
//!   artifacts the engine executes: [`sz_lint::lint_ruleset`] checks
//!   any `&[Rewrite]` for binding soundness, duplicates/inverses, and
//!   expansivity; [`sz_lint::verify_program`] abstractly interprets a
//!   compiled Bind/Compare/Lookup program against its source pattern's
//!   shape (the static complement of the VM-vs-naive differential
//!   suite); [`sz_lint::lint_cad`] flags degenerate CAD inputs
//!   (non-finite literals, zero scales, ill-sorted terms) before they
//!   enter a corpus run. Every finding carries a stable `SZLxxx` code
//!   and one of three severities; only **deny** findings gate.
//!   `szalinski::Synthesizer` runs the rule analyzer once at
//!   rule-compile time (a denied set is a structured
//!   [`szalinski::SynthError::RuleLint`], not a mid-saturation panic),
//!   and `sz-batch` exposes the corpus surface as `szb lint` and the
//!   standalone `szlint` binary.
//! * **`sz-gen`** is the corpus factory above those: a deterministic,
//!   seeded generator composing `sz-models` primitives, affine
//!   transforms, and [`sz_models::add_noise_with`] noise into *flat*
//!   CSG programs under a controllable distribution spec
//!   ([`sz_gen::GenSpec`], compact string grammar in
//!   [`sz_gen::SPEC_GRAMMAR`]). Model `i` streams from a splittable RNG
//!   keyed on `(seed, i)` ([`sz_gen::model_seed`]) — never global state
//!   — so the same `(seed, spec)` is byte-identical on any machine and
//!   across any shard split reassembled by index. The `szgen` CLI
//!   writes corpora and JSONL manifests and re-verifies them
//!   (`szgen verify`, drift detection); `szb --gen <spec>` streams a
//!   generated corpus straight into the batch engine with no files on
//!   disk (jobs named `gen:<seed>:<index>`, so `--shard` and
//!   `szb merge` work unchanged); and the `corpus` soak bin in
//!   `sz-bench` is the standing 10⁴–10⁵-model workload
//!   (`BENCH_corpus.json`) every perf change is measured against.
//! * **`sz-batch`** is the corpus engine added on top: a work-stealing
//!   thread pool with per-job panic isolation, a **two-tier**
//!   content-addressed cache (programs keyed on the full config
//!   fingerprint; size-bounded e-graph snapshots keyed on the
//!   saturation fingerprint) with on-disk persistence, a JSON-lines
//!   report sink (`BENCH_batch.json`, now with per-job `stop_reason`),
//!   and the `szb` binary that decompiles a directory of
//!   `.scad`/`.csexp` models end-to-end (`--snapshots <dir>` enables
//!   incremental re-runs). Every job is a `Synthesizer` run, so the
//!   engine inherits the session API's bounds: `--per-job-timeout`
//!   cancels one job, `--deadline` bounds the whole batch, and a shared
//!   `CancelToken` aborts everything in flight — all cooperatively,
//!   all still emitting partial programs.
//! * **`sz-bench`** regenerates the paper's Table 1 and figures, now
//!   through the batch engine (`run_table1_with`), plus Criterion-style
//!   micro-benches. Saturation runs record per-rule
//!   [`sz_egraph::RuleStat`] search/apply profiles, surfaced in `szb`'s
//!   JSONL job records (`search_time_s`, `apply_time_s`, `rules[]`) and
//!   aggregated corpus-wide by the `ematch` binary into
//!   `BENCH_ematch.json` (whose `--baseline` mode is CI's
//!   zero-matches regression gate).
//! * **`sz-trace`** is the observability base layer (zero external
//!   dependencies), threaded through every crate above via one
//!   [`sz_trace::Telemetry`] bundle — a clone-shared pair of a span
//!   [`sz_trace::Tracer`] and a [`sz_trace::Metrics`] registry, both
//!   **disabled by default** as a `None` behind an `Option<Arc<…>>` so
//!   the untraced hot path pays a null check and nothing else (the
//!   `trace_overhead` bin gates recording at ≤ 5 % over suite16):
//!
//!   ```text
//!   Telemetry ─┬─ Tracer   spans:   batch/job · pipeline/{saturation,
//!              │                    inference, extraction, snapshot.*} ·
//!              │                    runner/{iteration,search,apply,rebuild} ·
//!              │                    rule/<name>
//!              └─ Metrics  counters cache.{program_hit,snapshot_hit,miss},
//!                          run.mode.*, runner.iterations; gauges
//!                          egraph.{nodes,classes,memo}, pool.queue_depth;
//!                          histogram job.latency_us (log₂ buckets, p50/p90/p99)
//!   exporters: chrome_trace_json() (Perfetto-loadable) ·
//!              phase_summary() / render_text() (deterministic, for tests) ·
//!              metrics_json()
//!   ```
//!
//!   Attach with `RunOptions::with_telemetry` /
//!   `BatchEngine::with_telemetry` / `Runner::with_telemetry`; the CLI
//!   surface is `szb --trace FILE --metrics FILE --stats`, and the
//!   recorded bundle rides on [`szalinski::Synthesis`]`::telemetry`.
//!   Clocks are injectable ([`sz_trace::Clock`]) — a fixed-step clock
//!   makes two identical runs emit byte-identical summaries
//!   (`tests/telemetry_determinism.rs`); recording never changes
//!   synthesis output (byte-identical OpenSCAD, checked in CI).
//!
//! Offline stand-ins for `rand`/`proptest`/`criterion` live in
//! `third_party/` (the build environment has no crates.io access); see
//! `third_party/README.md`.

pub use sz_batch;
pub use sz_cad;
pub use sz_egraph;
pub use sz_gen;
pub use sz_lint;
pub use sz_mesh;
pub use sz_models;
pub use sz_scad;
pub use sz_solver;
pub use sz_trace;
pub use szalinski;
